// result.h -- outcome of an LP solve. Infeasible/unbounded are *expected*
// outcomes, reported in-band rather than thrown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/tolerances.h"

namespace agora::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

inline const char* to_string(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
  }
  return "unknown";
}

/// How the revised simplex maintains the basis matrix between pivots.
enum class BasisRep {
  /// Markowitz-ordered sparse LU with product-form eta updates (the
  /// default; see lp/sparse_lu.h). Work per iteration scales with the
  /// factorization's nonzeros, not with m^2.
  SparseLu,
  /// The historical explicit dense m x m inverse, kept selectable for
  /// differential testing and as the numerical reference.
  DenseInverse,
};

inline const char* to_string(BasisRep b) {
  switch (b) {
    case BasisRep::SparseLu: return "sparse-lu";
    case BasisRep::DenseInverse: return "dense-inverse";
  }
  return "unknown";
}

/// Per-solve numerical health counters, populated by the revised simplex
/// (the tableau solver fills what applies). Consumed by lp::SolvePipeline's
/// degradation telemetry.
struct SolveStats {
  /// Full basis-inverse rebuilds (pivot-count cadence + residual-triggered).
  std::uint64_t refactorizations = 0;
  /// The subset of refactorizations forced by an x_B residual check.
  std::uint64_t residual_refactorizations = 0;
  /// Iterative-refinement corrections applied to x_B.
  std::uint64_t refinement_steps = 0;
  /// Pivots taken under Bland's rule (stall / anti-cycling mode).
  std::uint64_t bland_pivots = 0;
  /// Cheap condition estimate ||B||_inf * ||B^-1||_inf at the last
  /// refactorization (0 when no refactorization happened). The sparse-LU
  /// basis reports the proxy ||B||_inf * |u_max/u_min| instead.
  double condition_estimate = 0.0;
  /// Worst relative ||b - B x_B||_inf observed during the solve.
  double max_xb_residual = 0.0;
  /// Sparse-LU basis telemetry (zero under BasisRep::DenseInverse):
  /// nonzeros of the factored basis columns, of L+U, and the worst
  /// product-form eta-file length, all at/since the last refactorization.
  std::uint64_t basis_nnz = 0;
  std::uint64_t lu_nnz = 0;
  std::uint64_t max_eta_count = 0;
  /// Presolve telemetry (zero when the solve ran without presolve): rows
  /// and columns removed from the problem the simplex actually saw.
  std::uint64_t presolve_rows_removed = 0;
  std::uint64_t presolve_cols_removed = 0;
};

struct SolveResult {
  Status status = Status::Infeasible;
  /// Objective value in the problem's own sense (only valid when Optimal).
  double objective = 0.0;
  /// Primal solution in the problem's original variables.
  std::vector<double> x;
  /// Shadow prices: duals[i] is the rate of change of the optimal objective
  /// (in the problem's own sense) per unit increase of constraint i's rhs.
  /// Valid only when Optimal; empty if the solver did not compute them.
  std::vector<double> duals;
  /// Farkas certificate for Status::Infeasible: standard-form row
  /// multipliers y with y'A_j <= 0 for every non-artificial column and
  /// y'b > 0 (see lp::Verifier::certify_infeasible). Empty if the solver
  /// did not produce one (e.g. the zero-variable quick path).
  std::vector<double> farkas;
  /// Unboundedness certificate for Status::Unbounded: a standard-form ray d
  /// with d >= 0, A d = 0 and c'd < 0; `x` then holds the feasible point the
  /// ray improves from.
  std::vector<double> ray;
  /// Simplex iterations across both phases.
  std::uint64_t iterations = 0;
  /// Numerical health counters for this solve.
  SolveStats stats;

  bool optimal() const { return status == Status::Optimal; }
};

/// Solver tuning knobs shared by both simplex implementations.
struct SolverOptions {
  /// Feasibility / reduced-cost tolerance.
  double tol = 1e-9;
  /// Hard cap on simplex iterations per phase.
  std::uint64_t max_iterations = 100000;
  /// After this many consecutive degenerate pivots, switch to Bland's rule
  /// (guarantees termination at the cost of speed).
  std::uint64_t stall_threshold = 64;
  /// Basis representation for the revised simplex (ignored by the tableau
  /// solver, which has no factored basis).
  BasisRep basis = BasisRep::SparseLu;
  /// Centralized numerical thresholds (shared with presolve and the
  /// certification layer; see tolerances.h).
  Tolerances tols;
};

}  // namespace agora::lp
