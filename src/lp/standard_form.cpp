#include "lp/standard_form.h"

#include <cmath>

namespace agora::lp {

namespace {

Relation flipped(Relation rel) {
  if (rel == Relation::LessEqual) return Relation::GreaterEqual;
  if (rel == Relation::GreaterEqual) return Relation::LessEqual;
  return Relation::Equal;
}

}  // namespace

bool StandardForm::has_artificials() const {
  for (bool a : is_artificial)
    if (a) return true;
  return false;
}

StandardForm build_standard_form(const Problem& p) {
  StandardForm sf;
  rebuild_standard_form(p, sf);
  return sf;
}

void rebuild_standard_form(const Problem& p, StandardForm& sf) {
  p.validate();
  const std::size_t nv = p.num_variables();

  sf.obj_scale = p.sense() == Sense::Minimize ? 1.0 : -1.0;
  sf.c0 = 0.0;
  sf.var_map.assign(nv, StandardForm::VarMap{});

  // --- 1. Lay out structural columns and the variable mapping. ------------
  std::size_t ncols = 0;
  std::size_t n_bound_rows = 0;
  for (std::size_t j = 0; j < nv; ++j) {
    const double lo = p.lower_bound(j);
    const double hi = p.upper_bound(j);
    const double cost = sf.obj_scale * p.objective_coeff(j);
    auto& vm = sf.var_map[j];
    if (std::isfinite(lo)) {
      vm.kind = StandardForm::VarMap::Kind::Shifted;
      vm.col = ncols++;
      vm.offset = lo;
      sf.c0 += cost * lo;
      if (std::isfinite(hi)) ++n_bound_rows;
    } else if (std::isfinite(hi)) {
      vm.kind = StandardForm::VarMap::Kind::Mirrored;
      vm.col = ncols++;
      vm.offset = hi;
      sf.c0 += cost * hi;
    } else {
      vm.kind = StandardForm::VarMap::Kind::Split;
      vm.col = ncols++;
      vm.neg_col = ncols++;
    }
  }
  sf.num_structural = ncols;

  // --- 2. Row pass: transformed rhs, negation, aux-column counts. ---------
  // Rows are the original constraints followed by one y <= hi - lo row per
  // finite-range shifted variable. Only the transformed rhs decides the
  // negation, so coefficients need not be materialized yet.
  const std::size_t m = p.num_constraints() + n_bound_rows;
  sf.b.assign(m, 0.0);
  sf.row_origin.assign(m, static_cast<std::size_t>(-1));
  sf.row_negated.assign(m, false);
  sf.offset_dot.assign(p.num_constraints(), 0.0);

  // rel_of(i): the row's relation after negation; recomputed on demand so no
  // scratch vector is needed.
  const auto base_rel = [&](std::size_t i) {
    return i < p.num_constraints() ? p.constraint(i).rel : Relation::LessEqual;
  };
  const auto rel_of = [&](std::size_t i) {
    return sf.row_negated[i] ? flipped(base_rel(i)) : base_rel(i);
  };

  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    const Constraint& con = p.constraint(i);
    double rhs = con.rhs;
    for (std::size_t j = 0; j < nv; ++j) {
      const double a = con.coeffs[j];
      if (a == 0.0) continue;
      const auto& vm = sf.var_map[j];
      if (vm.kind != StandardForm::VarMap::Kind::Split) rhs -= a * vm.offset;
    }
    sf.b[i] = rhs;
    sf.offset_dot[i] = con.rhs - rhs;
    sf.row_origin[i] = i;
  }
  {
    sf.bound_row_var.clear();
    std::size_t row = p.num_constraints();
    for (std::size_t j = 0; j < nv; ++j) {
      const auto& vm = sf.var_map[j];
      if (vm.kind != StandardForm::VarMap::Kind::Shifted) continue;
      const double hi = p.upper_bound(j);
      if (!std::isfinite(hi)) continue;
      sf.bound_row_var.push_back(j);
      sf.b[row++] = hi - p.lower_bound(j);
    }
  }

  std::size_t n_slack = 0;
  std::size_t n_art = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (sf.b[i] < 0.0) {
      sf.b[i] = -sf.b[i];
      sf.row_negated[i] = true;
    }
    const Relation rel = rel_of(i);
    if (rel != Relation::Equal) ++n_slack;
    if (rel != Relation::LessEqual) ++n_art;
  }

  // --- 3. Size the arrays (reusing capacity) and set the costs. -----------
  const std::size_t total = ncols + n_slack + n_art;
  sf.a.assign(m, total);
  sf.c.assign(total, 0.0);
  for (std::size_t j = 0; j < nv; ++j) {
    const auto& vm = sf.var_map[j];
    const double cost = sf.obj_scale * p.objective_coeff(j);
    switch (vm.kind) {
      case StandardForm::VarMap::Kind::Shifted: sf.c[vm.col] = cost; break;
      case StandardForm::VarMap::Kind::Mirrored: sf.c[vm.col] = -cost; break;
      case StandardForm::VarMap::Kind::Split:
        sf.c[vm.col] = cost;
        sf.c[vm.neg_col] = -cost;
        break;
    }
  }
  sf.is_artificial.assign(total, false);
  sf.initial_basis.assign(m, 0);

  // --- 4. Fill the matrix and pick the starting basis. --------------------
  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    const Constraint& con = p.constraint(i);
    const double sgn = sf.row_negated[i] ? -1.0 : 1.0;
    for (std::size_t j = 0; j < nv; ++j) {
      const double a = con.coeffs[j];
      if (a == 0.0) continue;
      const auto& vm = sf.var_map[j];
      switch (vm.kind) {
        case StandardForm::VarMap::Kind::Shifted:
          sf.a.at_unchecked(i, vm.col) += sgn * a;
          break;
        case StandardForm::VarMap::Kind::Mirrored:
          sf.a.at_unchecked(i, vm.col) -= sgn * a;
          break;
        case StandardForm::VarMap::Kind::Split:
          sf.a.at_unchecked(i, vm.col) += sgn * a;
          sf.a.at_unchecked(i, vm.neg_col) -= sgn * a;
          break;
      }
    }
  }
  {
    std::size_t row = p.num_constraints();
    for (std::size_t j = 0; j < nv; ++j) {
      const auto& vm = sf.var_map[j];
      if (vm.kind != StandardForm::VarMap::Kind::Shifted) continue;
      if (!std::isfinite(p.upper_bound(j))) continue;
      sf.a.at_unchecked(row, vm.col) = sf.row_negated[row] ? -1.0 : 1.0;
      ++row;
    }
  }

  std::size_t next_aux = ncols;
  for (std::size_t i = 0; i < m; ++i) {
    switch (rel_of(i)) {
      case Relation::LessEqual: {
        const std::size_t s = next_aux++;
        sf.a.at_unchecked(i, s) = 1.0;
        sf.initial_basis[i] = s;
        break;
      }
      case Relation::GreaterEqual: {
        const std::size_t s = next_aux++;   // surplus
        sf.a.at_unchecked(i, s) = -1.0;
        const std::size_t art = next_aux++;  // artificial
        sf.a.at_unchecked(i, art) = 1.0;
        sf.is_artificial[art] = true;
        sf.initial_basis[i] = art;
        break;
      }
      case Relation::Equal: {
        const std::size_t art = next_aux++;
        sf.a.at_unchecked(i, art) = 1.0;
        sf.is_artificial[art] = true;
        sf.initial_basis[i] = art;
        break;
      }
    }
  }
  AGORA_INVARIANT(next_aux == total, "auxiliary column accounting mismatch");

  // --- 5. CSC mirror of A plus the (A, c, shape) fingerprint. -------------
  sf.col_start.assign(total + 1, 0);
  for (std::size_t j = 0; j < total; ++j) {
    std::size_t nnz = 0;
    for (std::size_t i = 0; i < m; ++i)
      if (sf.a.at_unchecked(i, j) != 0.0) ++nnz;
    sf.col_start[j + 1] = sf.col_start[j] + nnz;
  }
  const std::size_t nnz_total = sf.col_start[total];
  sf.col_row.assign(nnz_total, 0);
  sf.col_val.assign(nnz_total, 0.0);
  double fp = static_cast<double>(m) * 1e6 + static_cast<double>(total) * 1e3;
  for (std::size_t j = 0; j < total; ++j) {
    std::size_t at = sf.col_start[j];
    for (std::size_t i = 0; i < m; ++i) {
      const double v = sf.a.at_unchecked(i, j);
      if (v == 0.0) continue;
      sf.col_row[at] = i;
      sf.col_val[at] = v;
      ++at;
      fp += v * (static_cast<double>(i + 1) * 0.5 + static_cast<double>(j + 1) * 1.25);
    }
  }
  for (std::size_t j = 0; j < total; ++j)
    fp += sf.c[j] * static_cast<double>(j + 1) * 1e-3;
  sf.fingerprint = fp;
  sf.source_id = p.instance_id();
  sf.source_rev = p.structural_revision();
}

bool repatch_standard_form_rhs(const Problem& p, StandardForm& sf) {
  if (sf.source_id == 0 || sf.source_id != p.instance_id() ||
      sf.source_rev != p.structural_revision())
    return false;
  const std::size_t nc = p.num_constraints();
  if (sf.offset_dot.size() != nc || sf.b.size() != nc + sf.bound_row_var.size())
    return false;
  // Validate before committing: a transformed rhs that changes sign changes
  // the row's negation, i.e. the coefficients of A -- full rebuild territory.
  // The matching structural revision already guarantees lower bounds and
  // bound finiteness are as built, so bound rows recompute as hi - lo.
  for (std::size_t i = 0; i < nc; ++i) {
    const double t = p.constraint(i).rhs - sf.offset_dot[i];
    if (!std::isfinite(t)) return false;
    if ((t < 0.0) != sf.row_negated[i]) return false;
  }
  for (std::size_t r = 0; r < sf.bound_row_var.size(); ++r) {
    const std::size_t j = sf.bound_row_var[r];
    const double t = p.upper_bound(j) - p.lower_bound(j);
    if (!std::isfinite(t)) return false;
    if ((t < 0.0) != sf.row_negated[nc + r]) return false;
  }
  for (std::size_t i = 0; i < nc; ++i) {
    const double t = p.constraint(i).rhs - sf.offset_dot[i];
    sf.b[i] = t < 0.0 ? -t : t;
  }
  for (std::size_t r = 0; r < sf.bound_row_var.size(); ++r) {
    const std::size_t j = sf.bound_row_var[r];
    const double t = p.upper_bound(j) - p.lower_bound(j);
    sf.b[nc + r] = t < 0.0 ? -t : t;
  }
  return true;
}

std::vector<double> recover_solution(const StandardForm& sf, const std::vector<double>& y,
                                     std::size_t num_original_vars) {
  AGORA_REQUIRE(num_original_vars == sf.var_map.size(), "variable count mismatch");
  std::vector<double> x(num_original_vars, 0.0);
  for (std::size_t j = 0; j < num_original_vars; ++j) {
    const auto& vm = sf.var_map[j];
    switch (vm.kind) {
      case StandardForm::VarMap::Kind::Shifted:
        x[j] = vm.offset + y.at(vm.col);
        break;
      case StandardForm::VarMap::Kind::Mirrored:
        x[j] = vm.offset - y.at(vm.col);
        break;
      case StandardForm::VarMap::Kind::Split:
        x[j] = y.at(vm.col) - y.at(vm.neg_col);
        break;
    }
  }
  return x;
}

}  // namespace agora::lp
