#include "lp/standard_form.h"

#include <cmath>

namespace agora::lp {

namespace {

/// Intermediate row during construction: dense structural coefficients,
/// relation, rhs.
struct Row {
  std::vector<double> coeffs;  // over structural columns
  Relation rel;
  double rhs;
  std::size_t origin;  // original constraint index, SIZE_MAX for bound rows
  bool negated = false;
};

}  // namespace

bool StandardForm::has_artificials() const {
  for (bool a : is_artificial)
    if (a) return true;
  return false;
}

StandardForm build_standard_form(const Problem& p) {
  p.validate();
  const std::size_t nv = p.num_variables();

  StandardForm sf;
  sf.obj_scale = p.sense() == Sense::Minimize ? 1.0 : -1.0;
  sf.var_map.resize(nv);

  // --- 1. Lay out structural columns and the variable mapping. ------------
  std::size_t ncols = 0;
  std::vector<double> struct_cost;  // minimization cost per structural column
  for (std::size_t j = 0; j < nv; ++j) {
    const double lo = p.lower_bound(j);
    const double hi = p.upper_bound(j);
    const double cost = sf.obj_scale * p.objective_coeff(j);
    auto& vm = sf.var_map[j];
    if (std::isfinite(lo)) {
      vm.kind = StandardForm::VarMap::Kind::Shifted;
      vm.col = ncols++;
      vm.offset = lo;
      struct_cost.push_back(cost);
      sf.c0 += cost * lo;
    } else if (std::isfinite(hi)) {
      vm.kind = StandardForm::VarMap::Kind::Mirrored;
      vm.col = ncols++;
      vm.offset = hi;
      struct_cost.push_back(-cost);
      sf.c0 += cost * hi;
    } else {
      vm.kind = StandardForm::VarMap::Kind::Split;
      vm.col = ncols++;
      vm.neg_col = ncols++;
      struct_cost.push_back(cost);
      struct_cost.push_back(-cost);
    }
  }
  sf.num_structural = ncols;

  // --- 2. Collect rows: original constraints, then finite-range bound rows.
  std::vector<Row> rows;
  rows.reserve(p.num_constraints() + nv);
  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    const Constraint& con = p.constraint(i);
    Row r;
    r.coeffs.assign(ncols, 0.0);
    r.rel = con.rel;
    r.rhs = con.rhs;
    r.origin = i;
    for (std::size_t j = 0; j < nv; ++j) {
      const double a = con.coeffs[j];
      if (a == 0.0) continue;
      const auto& vm = sf.var_map[j];
      switch (vm.kind) {
        case StandardForm::VarMap::Kind::Shifted:
          r.coeffs[vm.col] += a;
          r.rhs -= a * vm.offset;
          break;
        case StandardForm::VarMap::Kind::Mirrored:
          r.coeffs[vm.col] -= a;
          r.rhs -= a * vm.offset;
          break;
        case StandardForm::VarMap::Kind::Split:
          r.coeffs[vm.col] += a;
          r.coeffs[vm.neg_col] -= a;
          break;
      }
    }
    rows.push_back(std::move(r));
  }
  // Finite [lo, hi] ranges on shifted variables become y <= hi - lo rows.
  for (std::size_t j = 0; j < nv; ++j) {
    const auto& vm = sf.var_map[j];
    if (vm.kind != StandardForm::VarMap::Kind::Shifted) continue;
    const double hi = p.upper_bound(j);
    if (!std::isfinite(hi)) continue;
    Row r;
    r.coeffs.assign(ncols, 0.0);
    r.coeffs[vm.col] = 1.0;
    r.rel = Relation::LessEqual;
    r.rhs = hi - p.lower_bound(j);
    r.origin = static_cast<std::size_t>(-1);
    rows.push_back(std::move(r));
  }

  // --- 3. Normalize rhs signs and count auxiliary columns. ----------------
  const std::size_t m = rows.size();
  std::size_t n_slack = 0;
  std::size_t n_art = 0;
  for (auto& r : rows) {
    if (r.rhs < 0.0) {
      for (double& v : r.coeffs) v = -v;
      r.rhs = -r.rhs;
      r.negated = true;
      if (r.rel == Relation::LessEqual) r.rel = Relation::GreaterEqual;
      else if (r.rel == Relation::GreaterEqual) r.rel = Relation::LessEqual;
    }
    if (r.rel != Relation::Equal) ++n_slack;
    if (r.rel != Relation::LessEqual) ++n_art;
  }

  const std::size_t total = ncols + n_slack + n_art;
  sf.a = Matrix(m, total);
  sf.b.resize(m);
  sf.c.assign(total, 0.0);
  for (std::size_t j = 0; j < ncols; ++j) sf.c[j] = struct_cost[j];
  sf.is_artificial.assign(total, false);
  sf.initial_basis.resize(m);
  sf.row_origin.resize(m);
  sf.row_negated.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    sf.row_origin[i] = rows[i].origin;
    sf.row_negated[i] = rows[i].negated;
  }

  // --- 4. Fill the matrix and pick the starting basis. --------------------
  std::size_t next_aux = ncols;
  for (std::size_t i = 0; i < m; ++i) {
    const Row& r = rows[i];
    for (std::size_t j = 0; j < ncols; ++j) sf.a.at_unchecked(i, j) = r.coeffs[j];
    sf.b[i] = r.rhs;
    switch (r.rel) {
      case Relation::LessEqual: {
        const std::size_t s = next_aux++;
        sf.a.at_unchecked(i, s) = 1.0;
        sf.initial_basis[i] = s;
        break;
      }
      case Relation::GreaterEqual: {
        const std::size_t s = next_aux++;   // surplus
        sf.a.at_unchecked(i, s) = -1.0;
        const std::size_t art = next_aux++;  // artificial
        sf.a.at_unchecked(i, art) = 1.0;
        sf.is_artificial[art] = true;
        sf.initial_basis[i] = art;
        break;
      }
      case Relation::Equal: {
        const std::size_t art = next_aux++;
        sf.a.at_unchecked(i, art) = 1.0;
        sf.is_artificial[art] = true;
        sf.initial_basis[i] = art;
        break;
      }
    }
  }
  AGORA_INVARIANT(next_aux == total, "auxiliary column accounting mismatch");
  return sf;
}

std::vector<double> recover_solution(const StandardForm& sf, const std::vector<double>& y,
                                     std::size_t num_original_vars) {
  AGORA_REQUIRE(num_original_vars == sf.var_map.size(), "variable count mismatch");
  std::vector<double> x(num_original_vars, 0.0);
  for (std::size_t j = 0; j < num_original_vars; ++j) {
    const auto& vm = sf.var_map[j];
    switch (vm.kind) {
      case StandardForm::VarMap::Kind::Shifted:
        x[j] = vm.offset + y.at(vm.col);
        break;
      case StandardForm::VarMap::Kind::Mirrored:
        x[j] = vm.offset - y.at(vm.col);
        break;
      case StandardForm::VarMap::Kind::Split:
        x[j] = y.at(vm.col) - y.at(vm.neg_col);
        break;
    }
  }
  return x;
}

}  // namespace agora::lp
