#include "lp/solve_pipeline.h"

#include <algorithm>
#include <utility>

#include <string>

#include "obs/timer.h"
#include "util/error.h"

namespace agora::lp {

namespace {

void accumulate(SolveStats& into, const SolveStats& s) {
  into.refactorizations += s.refactorizations;
  into.residual_refactorizations += s.residual_refactorizations;
  into.refinement_steps += s.refinement_steps;
  into.bland_pivots += s.bland_pivots;
  into.condition_estimate = std::max(into.condition_estimate, s.condition_estimate);
  into.max_xb_residual = std::max(into.max_xb_residual, s.max_xb_residual);
  // Snapshot-style gauges: keep the high-water mark, not a meaningless sum.
  into.basis_nnz = std::max(into.basis_nnz, s.basis_nnz);
  into.lu_nnz = std::max(into.lu_nnz, s.lu_nnz);
  into.max_eta_count = std::max(into.max_eta_count, s.max_eta_count);
  into.presolve_rows_removed = std::max(into.presolve_rows_removed, s.presolve_rows_removed);
  into.presolve_cols_removed = std::max(into.presolve_cols_removed, s.presolve_cols_removed);
}

}  // namespace

void accumulate(PipelineStats& into, const PipelineStats& from) {
  into.solves += from.solves;
  for (int s = 0; s < kPipelineStages; ++s) {
    into.attempts[s] += from.attempts[s];
    into.failures[s] += from.failures[s];
  }
  into.certified += from.certified;
  into.primal_only += from.primal_only;
  into.exhausted += from.exhausted;
  into.max_fallback_depth = std::max(into.max_fallback_depth, from.max_fallback_depth);
  accumulate(into.solver, from.solver);
}

SolvePipeline::SolvePipeline(PipelineOptions opts)
    : opts_(opts), verifier_(opts.solve.tols) {
  // Resolve all metric handles up front; solve() then only bumps atomics.
  for (int i = 0; i < kPipelineStages; ++i) {
    const std::string prefix =
        std::string("lp.pipeline.stage.") + to_string(static_cast<PipelineStage>(i));
    stage_obs_[i].attempts = &opts_.sink.counter(prefix + ".attempts");
    stage_obs_[i].failures = &opts_.sink.counter(prefix + ".cert_failures");
    stage_obs_[i].seconds = &opts_.sink.histogram(prefix + ".seconds");
  }
  obs_solves_ = &opts_.sink.counter("lp.pipeline.solves");
  obs_certified_ = &opts_.sink.counter("lp.pipeline.certified");
  obs_exhausted_ = &opts_.sink.counter("lp.pipeline.exhausted");
  obs_solve_seconds_ = &opts_.sink.histogram("lp.pipeline.solve.seconds");
  obs_iterations_ = &opts_.sink.histogram("lp.pipeline.iterations");
}

PipelineResult SolvePipeline::solve(const Problem& p) { return attempt_chain(p, nullptr); }

PipelineResult SolvePipeline::solve(const Problem& p, SolveWorkspace* ws) {
  return attempt_chain(p, ws);
}

PipelineResult SolvePipeline::attempt_chain(const Problem& p, SolveWorkspace* ws) {
  ++stats_.solves;
  obs_solves_->inc();
  // Event time = solve ordinal: deterministic under identical inputs.
  const double ordinal = static_cast<double>(stats_.solves);
  const auto actor = static_cast<std::uint32_t>(stats_.solves);
  opts_.sink.event(ordinal, obs::EventKind::LpSolveStarted, actor);
  obs::ScopedTimer solve_timer(obs_solve_seconds_);
  PipelineResult out;

  PipelineStage chain[kPipelineStages];
  std::size_t len = 0;
  if (opts_.solve.backend == Backend::Revised) {
    if (ws && ws->warm) chain[len++] = PipelineStage::WarmRevised;
    chain[len++] = PipelineStage::ColdRevised;
    chain[len++] = PipelineStage::Tableau;
  } else {
    chain[len++] = PipelineStage::Tableau;
    chain[len++] = PipelineStage::ColdRevised;
  }
  chain[len++] = PipelineStage::BruteForce;

  bool saw_unbounded_claim = false;
  std::uint64_t attempts_made = 0;

  for (std::size_t s = 0; s < len; ++s) {
    const PipelineStage stage = chain[s];
    SolveResult r;
    const double stage_start = obs::kEnabled ? obs::now_seconds() : 0.0;
    // Presolve only applies to the first attempt: a fallback is a
    // cross-check, and checking through the same reductions that may have
    // produced the bad answer would not be independent.
    SolveOptions stage_opts = opts_.solve;
    stage_opts.presolve = opts_.solve.presolve && attempts_made == 0;
    switch (stage) {
      case PipelineStage::WarmRevised:
      case PipelineStage::ColdRevised:
        // Both pass the workspace: scratch is reused and a certified
        // optimum re-establishes the warm state for the next solve. In the
        // cold stage the warm flag is guaranteed off (either never set, or
        // cleared below after a failed warm certification).
        stage_opts.backend = Backend::Revised;
        r = lp::solve(p, stage_opts, ws);
        break;
      case PipelineStage::Tableau:
        stage_opts.backend = Backend::Tableau;
        r = lp::solve(p, stage_opts, nullptr);
        break;
      case PipelineStage::BruteForce: {
        // Enumeration cannot recognize unboundedness: if any earlier stage
        // claimed it, a "best basic solution" would be a lie. Skip.
        if (saw_unbounded_claim) continue;
        stage_opts.backend = Backend::BruteForce;
        try {
          r = lp::solve(p, stage_opts, nullptr);
        } catch (const PreconditionError&) {
          continue;  // problem too large for the terminal stage
        }
        break;
      }
      case PipelineStage::Exhausted:
        continue;
    }

    const int idx = static_cast<int>(stage);
    ++stats_.attempts[idx];
    ++attempts_made;
    accumulate(stats_.solver, r.stats);
    if constexpr (obs::kEnabled) {
      stage_obs_[idx].attempts->inc();
      stage_obs_[idx].seconds->observe(obs::now_seconds() - stage_start);
    }
    if (r.status == Status::Unbounded) saw_unbounded_claim = true;

    Certificate cert = verifier_.certify(p, r);
    if (cert.certified) {
      stats_.max_fallback_depth = std::max(stats_.max_fallback_depth, attempts_made - 1);
      ++stats_.certified;
      if (cert.primal_only) ++stats_.primal_only;
      obs_certified_->inc();
      obs_iterations_->observe(static_cast<double>(r.iterations));
      opts_.sink.event(ordinal, obs::EventKind::LpSolveCertified, actor,
                       static_cast<std::uint32_t>(idx),
                       static_cast<double>(attempts_made - 1),
                       static_cast<double>(r.iterations));
      out.result = std::move(r);
      out.certificate = cert;
      out.stage = stage;
      out.fallbacks = attempts_made - 1;
      return out;
    }

    ++stats_.failures[idx];
    stage_obs_[idx].failures->inc();
    opts_.sink.event(ordinal, obs::EventKind::LpSolveFallback, actor,
                     static_cast<std::uint32_t>(idx));
    if ((stage == PipelineStage::WarmRevised || stage == PipelineStage::ColdRevised) && ws) {
      // The revised answer did not survive verification; do not let its
      // basis seed the next solve.
      ws->invalidate();
    }
    out.result = std::move(r);
    out.certificate = cert;
  }

  ++stats_.exhausted;
  obs_exhausted_->inc();
  opts_.sink.event(ordinal, obs::EventKind::LpSolveExhausted, actor, 0,
                   static_cast<double>(attempts_made));
  stats_.max_fallback_depth =
      std::max(stats_.max_fallback_depth, attempts_made > 0 ? attempts_made - 1 : 0);
  out.stage = PipelineStage::Exhausted;
  out.fallbacks = attempts_made > 0 ? attempts_made - 1 : 0;
  return out;
}

}  // namespace agora::lp
