// solve.h -- the single public LP entry point.
//
//   SolveResult r = lp::solve(problem);                       // defaults
//   SolveResult r = lp::solve(problem, opts);                 // tuned
//   SolveResult r = lp::solve(problem, opts, &workspace);     // amortized
//
// Callers pick a Backend instead of instantiating a concrete solver class;
// the concrete implementations (SimplexSolver, RevisedSimplexSolver,
// brute_force_solve) are an internal detail of src/lp and their headers are
// not installed. SolveOptions also owns the presolve switch: by default a
// workspace-free solve runs presolve -> reduced solve -> postsolve, with the
// mapped result (primal, duals, objective) valid for -- and certifiable
// against -- the ORIGINAL problem. Presolve is transparently skipped when it
// cannot help or would break a stronger contract:
//
//   * workspace solves never presolve: warm-start fingerprints key on the
//     original matrix and the steady-state hot loop must stay
//     allocation-free (presolve rebuilds a Problem), so the trace-driven
//     enforcement path is byte-for-byte the historical one;
//   * a non-Optimal reduced outcome (infeasible/unbounded/decided-
//     infeasible) falls back to solving the original problem directly, so
//     Farkas/ray certificates always refer to the caller's problem;
//   * the brute-force backend is an oracle for tiny problems and always
//     solves the original directly.
//
// With `presolve = false` the call is bit-identical to invoking the chosen
// concrete solver directly, which is exactly what the historical API did.
#pragma once

#include <cstdint>

#include "lp/problem.h"
#include "lp/result.h"
#include "lp/tolerances.h"
#include "lp/workspace.h"

namespace agora::lp {

/// Refactorize the basis every this many pivots to bound numerical drift
/// (shared by the periodic cadence, warm-start bookkeeping, and tests).
inline constexpr std::uint64_t kRefactorInterval = 64;

enum class Backend {
  /// Revised simplex over a factored basis (sparse LU by default); the only
  /// backend that accepts a SolveWorkspace for warm starts.
  Revised,
  /// Dense two-phase tableau simplex: the simple, auditable reference.
  Tableau,
  /// Exhaustive basic-solution enumeration: exact oracle for tiny problems.
  /// Cannot detect unboundedness; throws PreconditionError past
  /// `brute_force_max_bases`.
  BruteForce,
};

inline const char* to_string(Backend b) {
  switch (b) {
    case Backend::Revised: return "revised";
    case Backend::Tableau: return "tableau";
    case Backend::BruteForce: return "brute-force";
  }
  return "unknown";
}

/// Every knob of an LP solve in one struct: backend choice, presolve switch,
/// solver tuning, and the centralized numerical tolerances.
struct SolveOptions {
  Backend backend = Backend::Revised;
  /// Run presolve -> solve -> postsolve (see file comment for when it is
  /// transparently skipped). Off reproduces the historical direct solve
  /// bit for bit.
  bool presolve = true;
  /// Basis representation for the revised backend.
  BasisRep basis = BasisRep::SparseLu;
  /// Feasibility / reduced-cost tolerance.
  double tol = 1e-9;
  /// Hard cap on simplex iterations per phase.
  std::uint64_t max_iterations = 100000;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  std::uint64_t stall_threshold = 64;
  /// Basis-enumeration cap for Backend::BruteForce.
  std::uint64_t brute_force_max_bases = 200'000;
  /// Centralized numerical thresholds (shared with presolve and the
  /// certification layer).
  Tolerances tols;

  /// The solver-level subset, for the concrete implementations.
  SolverOptions solver_options() const {
    SolverOptions o;
    o.tol = tol;
    o.max_iterations = max_iterations;
    o.stall_threshold = stall_threshold;
    o.basis = basis;
    o.tols = tols;
    return o;
  }
};

/// Solve `p` with the selected backend. `ws` (revised backend only) supplies
/// reusable scratch and the previous optimal basis as a warm start; passing
/// nullptr is a cold solve. See the file comment for the presolve contract.
SolveResult solve(const Problem& p, const SolveOptions& opts = {},
                  SolveWorkspace* ws = nullptr);

}  // namespace agora::lp
