#include "lp/solve.h"

#include "lp/brute_force.h"
#include "lp/presolve.h"
#include "lp/revised.h"
#include "lp/simplex.h"

namespace agora::lp {

namespace {

SolveResult solve_direct(const Problem& p, const SolveOptions& opts, SolveWorkspace* ws) {
  switch (opts.backend) {
    case Backend::Revised:
      return RevisedSimplexSolver(opts.solver_options()).solve(p, ws);
    case Backend::Tableau:
      return SimplexSolver(opts.solver_options()).solve(p);
    case Backend::BruteForce: {
      BruteForceOptions bf;
      bf.max_bases = opts.brute_force_max_bases;
      bf.tol = opts.tol;
      return brute_force_solve(p, bf);
    }
  }
  AGORA_INVARIANT(false, "unknown backend");
  return {};
}

}  // namespace

SolveResult solve(const Problem& p, const SolveOptions& opts, SolveWorkspace* ws) {
  // Presolve is skipped for workspace solves (warm-start contract), for the
  // brute-force oracle, and for empty problems the solvers decide in O(m).
  const bool presolvable = opts.presolve && ws == nullptr &&
                           opts.backend != Backend::BruteForce && p.num_variables() > 0;
  if (!presolvable) return solve_direct(p, opts, ws);

  PresolveOutcome pre = presolve(p, opts.tols);
  if (pre.decided) {
    if (pre.decided->status != Status::Optimal) {
      // Decided-infeasible carries no Farkas certificate; the direct solve
      // produces one against the original problem.
      return solve_direct(p, opts, nullptr);
    }
    SolveResult r = *pre.decided;
    r.stats.presolve_rows_removed = pre.original_rows;
    r.stats.presolve_cols_removed = pre.original_vars;
    return r;
  }

  SolveResult r = solve_direct(pre.reduced, opts, nullptr);
  if (r.status != Status::Optimal) {
    // Infeasibility/unboundedness certificates live in the reduced space and
    // do not map back through the reductions; re-solve the original directly
    // so the caller gets certificates for the problem it posed.
    return solve_direct(p, opts, nullptr);
  }
  pre.postsolve(p, r, opts.tols);
  r.stats.presolve_rows_removed = pre.original_rows - pre.row_origin.size();
  r.stats.presolve_cols_removed = pre.original_vars - pre.var_origin.size();
  return r;
}

}  // namespace agora::lp
