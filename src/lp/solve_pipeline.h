// solve_pipeline.h -- staged, self-verifying LP solve chain.
//
// A single simplex implementation answering alone is a single point of
// failure: the warm-started revised solver is the fastest path but also the
// most exposed to accumulated drift, the tableau solver is slower but
// independent, and brute-force enumeration is exact on tiny problems. The
// pipeline escalates through them --
//
//     warm revised -> cold revised -> two-phase tableau -> brute force
//
// (tableau first when the caller prefers that engine) -- and after EVERY
// attempt asks lp::Verifier to certify the answer against the original
// problem. The first certified answer wins; an uncertified answer is never
// returned as trustworthy. When the whole chain is exhausted the caller gets
// the last attempt plus its rejection reason, with certified() == false --
// enforcement layers map that to an explicit conservative denial.
//
// Per-stage telemetry (attempts, certification failures, fallback depth,
// accumulated solver health counters) is kept in PipelineStats so operators
// can see degradation *before* it becomes wrong answers.
#pragma once

#include <cstdint>

#include "lp/certify.h"
#include "lp/problem.h"
#include "lp/result.h"
#include "lp/solve.h"
#include "lp/workspace.h"
#include "obs/sink.h"

namespace agora::lp {

enum class PipelineStage : int {
  WarmRevised = 0,
  ColdRevised = 1,
  Tableau = 2,
  BruteForce = 3,
  Exhausted = 4,
};
inline constexpr int kPipelineStages = 4;

inline const char* to_string(PipelineStage s) {
  switch (s) {
    case PipelineStage::WarmRevised: return "warm-revised";
    case PipelineStage::ColdRevised: return "cold-revised";
    case PipelineStage::Tableau: return "tableau";
    case PipelineStage::BruteForce: return "brute-force";
    case PipelineStage::Exhausted: return "exhausted";
  }
  return "unknown";
}

struct PipelineOptions {
  /// Every solve knob (backend preference, presolve switch, basis
  /// representation, tolerances, iteration caps) shared by the stages; the
  /// Verifier uses `solve.tols` too. `solve.backend` picks the stage order:
  /// Backend::Revised puts the revised solver first (warm, then cold, then
  /// tableau); anything else starts at the tableau solver and uses
  /// cold-revised as the cross-check. Either way every stage's answer must
  /// certify, and presolve only runs on the first attempt -- fallback
  /// stages solve the original problem directly so the cross-check is
  /// independent of the reductions too.
  SolveOptions solve;
  /// Telemetry destination. Metric handles are resolved once at pipeline
  /// construction; the solve path itself never touches the registry map.
  /// Events carry the solve ordinal as their time (the pipeline has no
  /// clock), so identically seeded runs emit identical streams.
  obs::Sink sink = obs::Sink::global();
};

struct PipelineStats {
  std::uint64_t solves = 0;
  /// Per-stage attempt / certification-failure counters, indexed by
  /// PipelineStage (Exhausted excluded).
  std::uint64_t attempts[kPipelineStages] = {};
  std::uint64_t failures[kPipelineStages] = {};
  std::uint64_t certified = 0;     ///< solves that returned a certified answer
  std::uint64_t primal_only = 0;   ///< ... of which only primal-certified
  std::uint64_t exhausted = 0;     ///< solves where no stage certified
  std::uint64_t max_fallback_depth = 0;  ///< worst # of extra stages needed
  /// Solver health counters accumulated over every attempt.
  SolveStats solver;
};

/// Merge `from` into `into`: counters add, high-water marks take the max.
/// The aggregation every multi-pipeline owner needs (the engine's per-shard
/// allocators, a rebuilt allocator carrying its predecessor's telemetry).
void accumulate(PipelineStats& into, const PipelineStats& from);

struct PipelineResult {
  SolveResult result;
  Certificate certificate;
  /// Stage that produced `result` (Exhausted when nothing certified; the
  /// result is then the last attempt and certificate.reject says why it was
  /// rejected).
  PipelineStage stage = PipelineStage::Exhausted;
  /// Stages tried beyond the first (0 on the happy path).
  std::uint64_t fallbacks = 0;

  bool certified() const { return certificate.certified; }
};

class SolvePipeline {
 public:
  explicit SolvePipeline(PipelineOptions opts = {});

  /// Cold solve (no workspace: the warm stage is skipped).
  PipelineResult solve(const Problem& p);

  /// Warm-capable solve. `ws` follows the RevisedSimplexSolver workspace
  /// contract; when a warm answer fails certification the workspace is
  /// invalidated before the cold retry, so a poisoned basis cannot survive
  /// into later solves.
  PipelineResult solve(const Problem& p, SolveWorkspace* ws);

  const PipelineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  const PipelineOptions& options() const { return opts_; }

 private:
  PipelineResult attempt_chain(const Problem& p, SolveWorkspace* ws);

  /// Registry handles cached at construction so the solve path is
  /// allocation-free (see obs/metrics.h: references are stable for the
  /// registry's lifetime).
  struct StageObs {
    obs::Counter* attempts = nullptr;
    obs::Counter* failures = nullptr;
    obs::LogHistogram* seconds = nullptr;
  };

  PipelineOptions opts_;
  PipelineStats stats_;
  Verifier verifier_;
  StageObs stage_obs_[kPipelineStages];
  obs::Counter* obs_solves_ = nullptr;
  obs::Counter* obs_certified_ = nullptr;
  obs::Counter* obs_exhausted_ = nullptr;
  obs::LogHistogram* obs_solve_seconds_ = nullptr;
  obs::LogHistogram* obs_iterations_ = nullptr;
};

}  // namespace agora::lp
