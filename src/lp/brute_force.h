// brute_force.h -- exhaustive basic-solution enumeration for tiny LPs.
//
// The fundamental theorem of LP says an optimum (when one exists) is attained
// at a basic feasible solution, i.e. at some choice of m basis columns of the
// standard-form matrix. Enumerating all C(n, m) bases is exponential but
// exact, which makes it the perfect oracle for testing the simplex solvers
// on small random instances.
#pragma once

#include "lp/problem.h"
#include "lp/result.h"

namespace agora::lp {

struct BruteForceOptions {
  /// Give up (throw PreconditionError) if the number of bases exceeds this.
  std::uint64_t max_bases = 5'000'000;
  double tol = 1e-9;
};

/// Exact solve by basis enumeration. Distinguishes Infeasible (no basic
/// feasible solution) from Optimal. NOTE: cannot detect unboundedness -- it
/// reports the best *basic* solution, so only use it on problems known to be
/// bounded (tests arrange this).
SolveResult brute_force_solve(const Problem& p, BruteForceOptions opts = {});

}  // namespace agora::lp
