#include "lp/brute_force.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "lp/standard_form.h"
#include "util/matrix.h"

namespace agora::lp {

namespace {

/// Count C(n, k) saturating at `cap`.
std::uint64_t binomial_capped(std::uint64_t n, std::uint64_t k, std::uint64_t cap) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // r *= (n - k + i) / i, carefully.
    const double next = static_cast<double>(r) * static_cast<double>(n - k + i) /
                        static_cast<double>(i);
    if (next > static_cast<double>(cap)) return cap + 1;
    r = static_cast<std::uint64_t>(next + 0.5);
  }
  return r;
}

}  // namespace

SolveResult brute_force_solve(const Problem& p, BruteForceOptions opts) {
  SolveResult res;
  StandardForm sf = build_standard_form(p);
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();
  AGORA_REQUIRE(m <= n, "standard form must have at least as many columns as rows");
  AGORA_REQUIRE(binomial_capped(n, m, opts.max_bases) <= opts.max_bases,
                "problem too large for brute-force enumeration");

  std::vector<std::size_t> pick(m);
  std::iota(pick.begin(), pick.end(), 0);

  bool found = false;
  double best_obj = 0.0;
  std::vector<double> best_y;

  const auto evaluate = [&](const std::vector<std::size_t>& cols) {
    Matrix bmat(m, m);
    for (std::size_t c = 0; c < m; ++c)
      for (std::size_t r = 0; r < m; ++r) bmat.at_unchecked(r, c) = sf.a.at_unchecked(r, cols[c]);
    LuFactorization lu(bmat);
    if (lu.singular()) return;
    const std::vector<double> xb = lu.solve(sf.b);
    for (std::size_t c = 0; c < m; ++c) {
      if (xb[c] < -opts.tol) return;  // not primal feasible
      // A basic artificial above zero means the *original* system is not
      // satisfied at this basis.
      if (sf.is_artificial[cols[c]] && xb[c] > opts.tol) return;
    }
    double obj = sf.c0;
    for (std::size_t c = 0; c < m; ++c) obj += sf.c[cols[c]] * xb[c];
    if (!found || obj < best_obj - 1e-12) {
      found = true;
      best_obj = obj;
      best_y.assign(n, 0.0);
      for (std::size_t c = 0; c < m; ++c) best_y[cols[c]] = std::max(0.0, xb[c]);
    }
  };

  // Lexicographic enumeration of all m-subsets of {0..n-1}.
  for (;;) {
    evaluate(pick);
    // advance
    std::size_t i = m;
    while (i-- > 0) {
      if (pick[i] != i + n - m) {
        ++pick[i];
        for (std::size_t j = i + 1; j < m; ++j) pick[j] = pick[j - 1] + 1;
        break;
      }
      if (i == 0) {
        // exhausted
        if (!found) {
          res.status = Status::Infeasible;
          return res;
        }
        res.status = Status::Optimal;
        res.objective = sf.obj_scale * best_obj;
        res.x = recover_solution(sf, best_y, p.num_variables());
        return res;
      }
    }
  }
}

}  // namespace agora::lp
