// model_builder.h -- a small algebraic modeling layer over lp::Problem.
//
// Lets the allocation engine write constraints the way the paper writes
// them:
//
//   ModelBuilder mb(Sense::Minimize);
//   Var theta = mb.add_var("theta", 0.0);
//   std::vector<Var> d = mb.add_vars("d", n, 0.0);
//   mb.add(sum(d) == x);
//   for (...) mb.add(expr <= cap);
//   mb.minimize(theta);
//
// Expressions are dense over the variables added so far; fine for the model
// sizes agora builds.
#pragma once

#include <string>
#include <vector>

#include "lp/problem.h"

namespace agora::lp {

class ModelBuilder;

/// Handle to a model variable.
struct Var {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

/// A linear expression: coefficient per variable index plus a constant.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinExpr(Var v) { add_term(v, 1.0); }

  void add_term(Var v, double coeff);
  double constant() const { return constant_; }
  const std::vector<std::pair<std::size_t, double>>& terms() const { return terms_; }

  LinExpr& operator+=(const LinExpr& o);
  LinExpr& operator-=(const LinExpr& o);
  LinExpr& operator*=(double s);

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator*(LinExpr a, double s) { return a *= s; }
  friend LinExpr operator*(double s, LinExpr a) { return a *= s; }
  friend LinExpr operator-(LinExpr a) { return a *= -1.0; }

 private:
  std::vector<std::pair<std::size_t, double>> terms_;
  double constant_ = 0.0;
};

inline LinExpr operator*(Var v, double s) { return LinExpr(v) * s; }
inline LinExpr operator*(double s, Var v) { return LinExpr(v) * s; }

/// A relational expression awaiting ModelBuilder::add.
struct RelExpr {
  LinExpr lhs;
  Relation rel;
  // rhs folded into lhs constant; kept implicit.
};

inline RelExpr operator<=(LinExpr a, const LinExpr& b) {
  return RelExpr{a -= b, Relation::LessEqual};
}
inline RelExpr operator>=(LinExpr a, const LinExpr& b) {
  return RelExpr{a -= b, Relation::GreaterEqual};
}
inline RelExpr operator==(LinExpr a, const LinExpr& b) {
  return RelExpr{a -= b, Relation::Equal};
}

/// Sum of a vector of variables.
LinExpr sum(const std::vector<Var>& vars);

class ModelBuilder {
 public:
  explicit ModelBuilder(Sense sense = Sense::Minimize) : problem_(sense) {}

  Var add_var(const std::string& name, double lo = 0.0, double hi = kInfinity);
  std::vector<Var> add_vars(const std::string& prefix, std::size_t n, double lo = 0.0,
                            double hi = kInfinity);

  /// Unnamed variants: no per-variable name strings are materialized. Use on
  /// model-building hot paths (names are debug-only; Problem synthesizes
  /// "x<j>" lazily when asked).
  Var add_var(double lo, double hi = kInfinity);
  std::vector<Var> add_vars(std::size_t n, double lo = 0.0, double hi = kInfinity);

  /// Add a relational constraint built from expressions.
  std::size_t add(const RelExpr& rel, const std::string& name = "");

  /// Set the objective from an expression (constant part is remembered and
  /// added back to reported objectives by the caller if needed).
  void minimize(const LinExpr& e);
  void maximize(const LinExpr& e);

  Problem& problem() { return problem_; }
  const Problem& problem() const { return problem_; }
  double objective_constant() const { return obj_constant_; }

 private:
  void set_objective(const LinExpr& e, Sense sense);

  Problem problem_;
  double obj_constant_ = 0.0;
};

}  // namespace agora::lp
