#include "lp/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace agora::lp {

namespace {

/// Threshold-pivoting relaxation factor: a pivot must have magnitude at
/// least this fraction of the largest entry in its row AND its column to be
/// admissible (Markowitz search with tau = 0.1 is the classical sweet spot:
/// enough freedom to chase sparsity, bounded element growth).
constexpr double kPivotThreshold = 0.1;
/// Entries below this absolute magnitude never pivot (matches the dense
/// LuFactorization's singularity cutoff).
constexpr double kPivotFloor = 1e-12;
/// Merge results whose magnitude collapsed to rounding error of the
/// operands are dropped instead of stored as fill (pure cancellation dust).
constexpr double kCancel = 1e-14;
/// Suhl-style cap on the pivot search: once this many rows have offered an
/// admissible pivot, take the best seen. Rows come bucketed by count, so
/// the candidates examined are already the lowest-Markowitz-cost rows; the
/// cap trades a (rarely) slightly denser factor for a search that no
/// longer rescans every alive row at every elimination step.
constexpr std::size_t kPivotCandidates = 4;

}  // namespace

bool SparseLu::factorize(const StandardForm& sf, const std::vector<std::size_t>& basis) {
  const std::size_t m = sf.rows();
  dim_ = 0;  // stays 0 (== not factorized) until we succeed

  // --- Load B: rows_[i] collects (basis position, value) sorted by
  // position because we scatter column by column in position order. -------
  rows_.resize(std::max(rows_.size(), m));
  col_rows_.resize(std::max(col_rows_.size(), m));
  for (std::size_t i = 0; i < m; ++i) rows_[i].clear();
  for (std::size_t j = 0; j < m; ++j) col_rows_[j].clear();
  row_count_.assign(m, 0);
  col_count_.assign(m, 0);
  row_alive_.assign(m, true);
  col_alive_.assign(m, true);

  basis_nnz_ = 0;
  bnorm_ = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t col = basis[j];
    double colsum = 0.0;
    for (std::size_t t = sf.col_start[col]; t < sf.col_start[col + 1]; ++t) {
      const std::size_t r = sf.col_row[t];
      const double v = sf.col_val[t];
      if (v == 0.0) continue;
      rows_[r].push_back({j, v});
      col_rows_[j].push_back(r);
      ++col_count_[j];
      colsum += std::fabs(v);
      ++basis_nnz_;
    }
    bnorm_ = std::max(bnorm_, colsum);
  }
  for (std::size_t i = 0; i < m; ++i) row_count_[i] = rows_[i].size();

  // Count buckets for the pivot search. Every count change re-enqueues the
  // row under its new count; entries under outdated counts are dropped
  // lazily when a search pass touches them. A live row with entries is
  // always findable: its latest enqueue (or a surviving older entry under a
  // count it returned to) is in the bucket matching row_count_.
  cnt_bucket_.resize(std::max(cnt_bucket_.size(), m + 1));
  for (auto& b : cnt_bucket_) b.clear();
  row_bucket_.assign(m, 0);
  const auto enqueue_row = [&](std::size_t i) {
    const std::size_t c = row_count_[i];
    if (c == 0 || row_bucket_[i] == c) return;
    row_bucket_[i] = c;
    cnt_bucket_[c].push_back(i);
  };
  for (std::size_t i = 0; i < m; ++i) enqueue_row(i);

  l_start_.assign(1, 0);
  l_row_.clear();
  l_val_.clear();
  u_start_.assign(1, 0);
  u_col_.clear();
  u_val_.clear();
  u_diag_.clear();
  pivot_row_.clear();
  pivot_col_.clear();
  eta_start_.assign(1, 0);
  eta_pos_.clear();
  eta_pivot_.clear();
  eta_idx_.clear();
  eta_val_.clear();
  udiag_max_ = 0.0;
  udiag_min_ = std::numeric_limits<double>::infinity();

  merge_val_.assign(m, 0.0);
  merge_mark_.assign(m, 0);
  merge_cols_.clear();

  // --- Elimination: m Markowitz-pivoted steps. ----------------------------
  for (std::size_t step = 0; step < m; ++step) {
    // Pivot search: best (r-1)(c-1) among entries passing the row threshold;
    // ties prefer larger magnitude. Buckets are scanned in increasing row
    // count, so the lowest-cost rows surface first and the Suhl cap can cut
    // the scan off after kPivotCandidates admissible rows (or immediately on
    // a cost-0 pivot). Stale bucket entries are compacted away in passing.
    // Bucket order is a deterministic function of the input, so the pivot
    // sequence -- and every downstream solve -- stays reproducible.
    std::size_t best_row = m, best_col = m;
    double best_val = 0.0;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    std::size_t candidates = 0;
    bool done = false;
    for (std::size_t c = 1; c <= m && !done; ++c) {
      std::vector<std::size_t>& bucket = cnt_bucket_[c];
      std::size_t keep = 0;
      for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
        const std::size_t i = bucket[idx];
        if (!row_alive_[i] || row_count_[i] != c) continue;  // stale: drop
        bucket[keep++] = i;
        const std::uint64_t rminus = c - 1;
        double rowmax = 0.0;
        for (const Entry& e : rows_[i]) rowmax = std::max(rowmax, std::fabs(e.val));
        if (rowmax <= kPivotFloor) continue;  // numerically empty row
        const double cut = std::max(kPivotFloor, kPivotThreshold * rowmax);
        bool admissible = false;
        for (const Entry& e : rows_[i]) {
          const double mag = std::fabs(e.val);
          if (mag < cut) continue;
          admissible = true;
          const std::uint64_t cost = rminus * (col_count_[e.col] - 1);
          const bool better =
              cost < best_cost || (cost == best_cost && mag > std::fabs(best_val));
          if (better) {
            best_cost = cost;
            best_row = i;
            best_col = e.col;
            best_val = e.val;
          }
        }
        if (admissible) ++candidates;
        if (best_cost == 0 || (candidates >= kPivotCandidates && best_row != m)) {
          for (++idx; idx < bucket.size(); ++idx) bucket[keep++] = bucket[idx];
          done = true;
          break;
        }
      }
      bucket.resize(keep);
    }
    if (best_row == m) return false;  // singular: no admissible pivot left

    const std::size_t p = best_row, q = best_col;
    const double diag = best_val;
    udiag_max_ = std::max(udiag_max_, std::fabs(diag));
    udiag_min_ = std::min(udiag_min_, std::fabs(diag));

    // Record U row `step`: diagonal first, then the off-diagonals.
    pivot_row_.push_back(p);
    pivot_col_.push_back(q);
    u_diag_.push_back(diag);
    for (const Entry& e : rows_[p])
      if (e.col != q) {
        u_col_.push_back(e.col);
        u_val_.push_back(e.val);
      }
    u_start_.push_back(u_col_.size());

    // Eliminate column q from every other alive row that carries it, and
    // record the multipliers as L column `step`.
    for (const std::size_t i : col_rows_[q]) {
      if (!row_alive_[i] || i == p) continue;
      // Locate a_iq (rows are unsorted; linear scan over the sparse row).
      double aiq = 0.0;
      for (const Entry& e : rows_[i])
        if (e.col == q) {
          aiq = e.val;
          break;
        }
      if (aiq == 0.0) continue;  // stale column-list entry
      const double mult = aiq / diag;
      l_row_.push_back(i);
      l_val_.push_back(mult);

      // row_i := row_i - mult * row_p, dropping the q entry. Dense-
      // accumulator merge: scatter row_i, axpy row_p, gather. Mark 1 =
      // position already present in row i, mark 2 = fill introduced by
      // row p (used below to maintain the column lists without a scan).
      merge_cols_.clear();
      for (const Entry& e : rows_[i]) {
        if (e.col == q) continue;
        merge_val_[e.col] = e.val;
        merge_mark_[e.col] = 1;
        merge_cols_.push_back(e.col);
      }
      for (const Entry& e : rows_[p]) {
        if (e.col == q) continue;
        if (!merge_mark_[e.col]) {
          merge_val_[e.col] = 0.0;
          merge_mark_[e.col] = 2;
          merge_cols_.push_back(e.col);
        }
        merge_val_[e.col] -= mult * e.val;
      }
      rows_[i].clear();
      for (const std::size_t c : merge_cols_) {
        const bool fill = merge_mark_[c] == 2;
        merge_mark_[c] = 0;
        const double v = merge_val_[c];
        // Keep the entry unless it is cancellation dust relative to the
        // operands that produced it.
        if (std::fabs(v) > kCancel * (1.0 + std::fabs(mult) * bnorm_)) {
          rows_[i].push_back({c, v});
          // Genuinely new fill (the merge saw no prior entry for c in row
          // i) is appended to the column list without a membership scan:
          // row i can already be listed under c only as a stale leftover
          // from a cancellation drop, so the scan was a near-guaranteed
          // full-length miss. A rare duplicate is harmless -- the
          // elimination loop skips rows that no longer carry the pivot
          // column -- and only nudges col_count_'s heuristic value.
          if (fill) {
            col_rows_[c].push_back(i);
            ++col_count_[c];
          }
        }
        // else: cancellation dust; dropping it may leave col_count_ slightly
        // overcounting, which only biases the Markowitz heuristic, never
        // correctness.
      }
      row_count_[i] = rows_[i].size();
      enqueue_row(i);
    }
    l_start_.push_back(l_row_.size());

    // Retire the pivot row and column. Column counts of the pivot row's
    // other columns drop by one (their entry in row p moved into U).
    row_alive_[p] = false;
    col_alive_[q] = false;
    for (const Entry& e : rows_[p])
      if (e.col != q && col_count_[e.col] > 0) --col_count_[e.col];
    rows_[p].clear();
    row_count_[p] = 0;
    col_rows_[q].clear();
  }

  lu_nnz_ = l_row_.size() + u_col_.size() + m;
  dim_ = m;
  return true;
}

void SparseLu::ftran(std::vector<double>& x) const {
  const std::size_t m = dim_;
  // Forward pass: apply the elimination steps to the right-hand side.
  for (std::size_t k = 0; k < m; ++k) {
    const double piv = x[pivot_row_[k]];
    if (piv == 0.0) continue;
    for (std::size_t t = l_start_[k]; t < l_start_[k + 1]; ++t)
      x[l_row_[t]] -= l_val_[t] * piv;
  }
  // Back substitution on U: results live in basis-position space.
  scratch_.assign(m, 0.0);
  for (std::size_t k = m; k-- > 0;) {
    double s = x[pivot_row_[k]];
    for (std::size_t t = u_start_[k]; t < u_start_[k + 1]; ++t)
      s -= u_val_[t] * scratch_[u_col_[t]];
    scratch_[pivot_col_[k]] = s / u_diag_[k];
  }
  x.assign(scratch_.begin(), scratch_.begin() + m);

  // Eta file, forward: solve E u = x per eta (u_r = x_r / w_r, then the
  // rank-one correction).
  for (std::size_t e = 0; e < eta_pos_.size(); ++e) {
    const std::size_t r = eta_pos_[e];
    const double xr = x[r] / eta_pivot_[e];
    x[r] = xr;
    if (xr == 0.0) continue;
    for (std::size_t t = eta_start_[e]; t < eta_start_[e + 1]; ++t)
      x[eta_idx_[t]] -= eta_val_[t] * xr;
  }
}

void SparseLu::btran(std::vector<double>& y) const {
  const std::size_t m = dim_;
  // Eta file in reverse, transposed: E' u = y only changes u_r.
  for (std::size_t e = eta_pos_.size(); e-- > 0;) {
    const std::size_t r = eta_pos_[e];
    double s = y[r];
    for (std::size_t t = eta_start_[e]; t < eta_start_[e + 1]; ++t)
      s -= eta_val_[t] * y[eta_idx_[t]];
    y[r] = s / eta_pivot_[e];
  }

  // U' z = y: forward over the steps, scattering each z into the columns
  // its U row touches.
  scratch_.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double z = y[pivot_col_[k]] / u_diag_[k];
    scratch_[k] = z;
    if (z == 0.0) continue;
    for (std::size_t t = u_start_[k]; t < u_start_[k + 1]; ++t)
      y[u_col_[t]] -= u_val_[t] * z;
  }
  // L' pass: y lives in standard-form-row space from here.
  for (std::size_t k = 0; k < m; ++k) y[pivot_row_[k]] = scratch_[k];
  for (std::size_t k = m; k-- > 0;) {
    double s = y[pivot_row_[k]];
    for (std::size_t t = l_start_[k]; t < l_start_[k + 1]; ++t)
      s -= l_val_[t] * y[l_row_[t]];
    y[pivot_row_[k]] = s;
  }
}

void SparseLu::push_eta(std::size_t pos, const std::vector<double>& w, double drop) {
  eta_pos_.push_back(pos);
  eta_pivot_.push_back(w[pos]);
  for (std::size_t i = 0; i < dim_; ++i) {
    if (i == pos) continue;
    const double v = w[i];
    if (std::fabs(v) <= drop) continue;
    eta_idx_.push_back(i);
    eta_val_.push_back(v);
  }
  eta_start_.push_back(eta_idx_.size());
}

double SparseLu::condition_estimate() const {
  if (dim_ == 0 || udiag_min_ <= 0.0) return 0.0;
  return bnorm_ * (udiag_max_ / udiag_min_);
}

}  // namespace agora::lp
