// simplex.h -- dense two-phase primal simplex over the full tableau.
//
// This is the reference solver: simple, exact for the small allocation LPs
// agora produces (tens of variables), and easy to audit. The revised simplex
// in revised.h is the faster implementation for larger instances; both share
// the standard-form conversion and are cross-checked in tests.
#pragma once

#include "lp/problem.h"
#include "lp/result.h"

namespace agora::lp {

class SimplexSolver {
 public:
  explicit SimplexSolver(SolverOptions opts = {}) : opts_(opts) {}

  /// Solve a natural-form problem. Never throws for infeasible/unbounded
  /// inputs -- those are reported in the result status.
  SolveResult solve(const Problem& p) const;

 private:
  SolverOptions opts_;
};

}  // namespace agora::lp
