// standard_form.h -- conversion of a natural-form Problem into the canonical
// computational form shared by both simplex implementations:
//
//     min c' y + c0    subject to  A y = b,  y >= 0,  b >= 0
//
// Variable handling:
//   * finite lower bound:            x = lo + y          (shift)
//   * lower bound -inf, finite hi:   x = hi - y          (mirror)
//   * free (both infinite):          x = y_pos - y_neg   (split)
//   * finite upper bound on shifted variables becomes an explicit <= row.
//
// Rows gain slack (<=), surplus (>=) and artificial (>=, =) columns; rows
// with negative rhs are negated first. The initial basis is the slack or
// artificial column of each row, which is feasible by construction for
// phase 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/problem.h"
#include "util/matrix.h"

namespace agora::lp {

struct StandardForm {
  Matrix a;                 ///< m x n constraint matrix.
  std::vector<double> b;    ///< length m, all entries >= 0.
  std::vector<double> c;    ///< length n, phase-2 objective (minimization).
  double c0 = 0.0;          ///< objective constant from shifting/mirroring.
  double obj_scale = 1.0;   ///< +1 for Minimize problems, -1 for Maximize.

  /// How each original variable maps back from y.
  struct VarMap {
    enum class Kind { Shifted, Mirrored, Split } kind = Kind::Shifted;
    std::size_t col = 0;      ///< primary column (pos part for Split).
    std::size_t neg_col = 0;  ///< negative part for Split.
    double offset = 0.0;      ///< lo (Shifted) or hi (Mirrored).
  };
  std::vector<VarMap> var_map;

  std::size_t num_structural = 0;        ///< columns representing original vars.
  std::vector<bool> is_artificial;       ///< per column.
  std::vector<std::size_t> initial_basis;  ///< per row: the starting basic column.

  /// Original constraint index per row, or SIZE_MAX for synthetic bound
  /// rows; with `row_negated`, lets solvers map standard-form duals back to
  /// shadow prices of the original constraints.
  std::vector<std::size_t> row_origin;
  std::vector<bool> row_negated;

  /// Compressed-sparse-column copy of `a`, rebuilt alongside it. The
  /// allocation LPs are very sparse (flow rows have 2 nonzeros), so the
  /// revised simplex prices and ftrans over these arrays instead of paying
  /// dense O(m) per column. Row indices within a column are ascending, so
  /// iterating a column visits exactly the nonzeros the dense scan would,
  /// in the same order (bit-identical arithmetic).
  std::vector<std::size_t> col_start;  ///< length cols()+1.
  std::vector<std::size_t> col_row;    ///< nnz row indices.
  std::vector<double> col_val;         ///< nnz values.

  /// Order-deterministic digest of (A, c, shape). Two standard forms with
  /// equal fingerprints were built from problems with the same constraint
  /// matrix and objective -- only b (rhs / bounds) may differ. Warm starts
  /// key on this: a reused basis is only valid against an unchanged matrix.
  double fingerprint = 0.0;

  /// Per original-constraint row: sum_j a_ij * offset_j, the bound-shift
  /// contribution folded into b at build time. Cached so an rhs-only change
  /// can recompute b[i] = |rhs_i - offset_dot[i]| in O(1) per row without
  /// touching the matrix (see repatch_standard_form_rhs).
  std::vector<double> offset_dot;
  /// Per bound row (rows num_constraints()..rows()-1, in order): the
  /// original variable whose y <= hi - lo row it is. Lets a value-only
  /// upper-bound move repatch b without a rebuild.
  std::vector<std::size_t> bound_row_var;
  /// (instance_id, structural_revision) of the Problem this form was built
  /// from; repatch_standard_form_rhs refuses to patch when either moved.
  std::uint64_t source_id = 0;
  std::uint64_t source_rev = 0;

  std::size_t rows() const { return b.size(); }
  std::size_t cols() const { return c.size(); }
  bool has_artificials() const;
};

/// Build the standard form. Throws PreconditionError on invalid problems.
StandardForm build_standard_form(const Problem& p);

/// In-place variant: rebuilds `sf` from `p`, reusing all of `sf`'s heap
/// storage. Repeated calls with problems of identical shape perform no
/// allocations -- this is the per-request path of the trace-driven
/// enforcement loop. Produces exactly the same standard form as
/// build_standard_form(p).
void rebuild_standard_form(const Problem& p, StandardForm& sf);

/// Fast path for the consult loop's rhs-only motion -- Problem::set_rhs and
/// value-only Problem::set_bounds (the allocator's per-request patch): when
/// `sf` was built from this exact problem structure (same instance, same
/// structural revision) and no transformed rhs changes sign -- a sign flip
/// negates the row's coefficients, i.e. changes A -- update sf.b in place
/// (constraint rows from the cached offset dots, bound rows from the moved
/// bounds), O(rows), and return true. Any mismatch returns false with sf.b
/// possibly half-written; the caller must then rebuild_standard_form().
/// A, c, and the fingerprint are untouched, so warm starts keyed on the
/// fingerprint survive the patch.
bool repatch_standard_form_rhs(const Problem& p, StandardForm& sf);

/// Map a standard-form point y back to the original variable space.
std::vector<double> recover_solution(const StandardForm& sf, const std::vector<double>& y,
                                     std::size_t num_original_vars);

}  // namespace agora::lp
