#include "lp/certify.h"

#include <algorithm>
#include <cmath>

#include "util/matrix.h"

namespace agora::lp {

namespace {

/// max(residual, v) that never lets a NaN poison the running maximum
/// (NaN residuals are handled by the explicit finiteness checks instead).
void bump(double& residual, double v) {
  if (std::isfinite(v) && v > residual) residual = v;
}

/// bump(residual, num / den) without paying the divide unless this element
/// actually raises the maximum -- certification runs on every enforcement
/// solve, and on healthy answers nearly every ratio loses to the running
/// max, so the hot path is one multiply per element. `den` is always of the
/// form 1 + |...| > 0; a NaN in `num` fails the comparison and is skipped,
/// matching bump()'s NaN policy.
void bump_ratio(double& residual, double num, double den) {
  if (num > residual * den) {
    const double v = num / den;
    if (std::isfinite(v)) residual = v;
  }
}

bool all_finite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

/// Relative violation of a constant (zero-variable) constraint row.
double constant_row_violation(const Constraint& c) {
  const double scale = 1.0 + std::fabs(c.rhs);
  switch (c.rel) {
    case Relation::LessEqual: return std::max(0.0, -c.rhs) / scale;
    case Relation::GreaterEqual: return std::max(0.0, c.rhs) / scale;
    case Relation::Equal: return std::fabs(c.rhs) / scale;
  }
  return 0.0;
}

}  // namespace

Certificate Verifier::certify(const Problem& p, const SolveResult& r) {
  switch (r.status) {
    case Status::Optimal: return certify_optimal(p, r.x, r.duals, r.objective);
    case Status::Infeasible: return certify_infeasible(p, r.farkas);
    case Status::Unbounded: return certify_unbounded(p, r.x, r.ray);
    case Status::IterationLimit: break;
  }
  Certificate cert;
  cert.reject = "solver hit its iteration limit: nothing to certify";
  return cert;
}

Certificate Verifier::certify_optimal(const Problem& p, const std::vector<double>& x,
                                      const std::vector<double>& duals, double objective) {
  Certificate cert;
  cert.claim = Certificate::Claim::Optimal;

  const std::size_t nv = p.num_variables();
  const std::size_t nc = p.num_constraints();

  if (x.size() != nv) {
    cert.reject = "solution vector has the wrong dimension";
    return cert;
  }
  if (!duals.empty() && duals.size() != nc) {
    cert.reject = "dual vector has the wrong dimension";
    return cert;
  }
  if (!std::isfinite(objective)) {
    cert.reject = "non-finite entry in claimed solution";
    return cert;
  }

  const double s = p.sense() == Sense::Minimize ? 1.0 : -1.0;
  const std::vector<double>& lob = p.lower_bounds();
  const std::vector<double>& hib = p.upper_bounds();
  const std::vector<double>& cost = p.objective();

  // --- One pass over the variables: bound feasibility, objective value
  // c'x, and the reduced-cost accumulators z_j = c~_j - sum_i y~_i a_ij
  // (zden_ carries the matching magnitude sum for the relative test; the
  // row terms are added in the constraint pass below). An infinite bound
  // needs no explicit guard: its violation is -inf (or its scale inf), and
  // bump_ratio's comparison rejects both without a divide. Finiteness of x
  // rides along as the |x| sum instead of a separate all_finite() pass: a
  // NaN or inf entry makes the sum non-finite (a sum of finite |x_j|
  // overflowing to inf is indistinguishable, but an answer with total
  // magnitude near 1e308 deserves rejection anyway). ------------------------
  z_.resize(nv);
  zden_.resize(nv);
  double primal_residual = 0.0;
  double cx = 0.0;
  double xmag = 0.0;
  for (std::size_t j = 0; j < nv; ++j) {
    const double lo = lob[j];
    const double hi = hib[j];
    xmag += std::fabs(x[j]);
    bump_ratio(primal_residual, lo - x[j], 1.0 + std::fabs(lo) + std::fabs(x[j]));
    bump_ratio(primal_residual, x[j] - hi, 1.0 + std::fabs(hi) + std::fabs(x[j]));
    const double craw = cost[j];
    cx += craw * x[j];
    const double cj = s * craw;
    z_[j] = cj;
    zden_[j] = 1.0 + std::fabs(cj);
  }
  if (!std::isfinite(xmag)) {
    cert.reject = "non-finite entry in claimed solution";
    return cert;
  }

  double dual_obj = 0.0;  // starts as b'y~, bound terms added below
  double dual_residual = 0.0;
  double compl_residual = 0.0;
  double ymag = 0.0;  // finiteness of the duals, same trick as xmag
  const bool have_duals = !duals.empty();
  double* __restrict zp = z_.data();
  double* __restrict zdp = zden_.data();
  const double* __restrict xp = x.data();
  const Constraint* rows = p.constraints().data();
  for (std::size_t i = 0; i < nc; ++i) {
    const Constraint& con = rows[i];
    // Coefficient vectors may be shorter than num_variables() when variables
    // were added after the constraint; the missing tail is zero.
    const std::size_t width = std::min(con.coeffs.size(), nv);
    const double y = have_duals ? s * duals[i] : 0.0;
    ymag += std::fabs(y);
    const double* __restrict ap = con.coeffs.data();
    double act = 0.0, mag = 0.0;
    // Branch-free fused pass: row activity and the y-weighted reduced-cost
    // update touch the same contiguous elements, and skipping zeros with a
    // branch costs more than multiplying by them (a zero coefficient
    // contributes exactly zero because x and y are already known finite).
    // The restrict-qualified locals tell the compiler the accumulators
    // cannot alias the coefficient row.
    if (y != 0.0) {
      for (std::size_t j = 0; j < width; ++j) {
        const double a = ap[j];
        const double ax = a * xp[j];
        act += ax;
        mag += std::fabs(ax);
        const double ya = y * a;
        zp[j] -= ya;
        zdp[j] += std::fabs(ya);
      }
    } else {
      for (std::size_t j = 0; j < width; ++j) {
        const double ax = ap[j] * xp[j];
        act += ax;
        mag += std::fabs(ax);
      }
    }
    const double row_scale = 1.0 + std::fabs(con.rhs) + mag;
    double viol = 0.0;
    switch (con.rel) {
      case Relation::LessEqual: viol = act - con.rhs; break;
      case Relation::GreaterEqual: viol = con.rhs - act; break;
      case Relation::Equal: viol = std::fabs(act - con.rhs); break;
    }
    bump_ratio(primal_residual, viol, row_scale);

    if (!have_duals) continue;
    const double y_scale = 1.0 + std::fabs(y);
    // Dual sign: raising the rhs of a <= row can only help a minimization,
    // so its (minimize-normalized) shadow price must be <= 0; mirrored for
    // >= rows; equality rows are free.
    if (con.rel == Relation::LessEqual) bump_ratio(dual_residual, y, y_scale);
    if (con.rel == Relation::GreaterEqual) bump_ratio(dual_residual, -y, y_scale);
    // Complementary slackness: a non-binding row must carry no price.
    if (con.rel != Relation::Equal)
      bump_ratio(compl_residual, std::fabs(y) * std::fabs(act - con.rhs),
                 y_scale * row_scale);
    dual_obj += y * con.rhs;
  }
  if (have_duals && !std::isfinite(ymag)) {
    cert.reject = "non-finite entry in claimed solution";
    return cert;
  }
  cert.primal_residual = primal_residual;
  cert.complementarity_residual = compl_residual;

  // --- Objective consistency: the reported value must match c'x. ----------
  bump_ratio(cert.objective_gap, std::fabs(cx - objective),
             1.0 + std::fabs(cx) + std::fabs(objective));

  if (!have_duals) {
    // No dual evidence (brute-force enumeration): certify feasibility and
    // objective consistency only.
    cert.primal_only = true;
    if (cert.primal_residual > tols_.feasibility)
      cert.reject = "claimed-optimal point is primal infeasible";
    else if (cert.objective_gap > tols_.objective_gap)
      cert.reject = "reported objective disagrees with c'x";
    cert.certified = cert.reject == nullptr;
    return cert;
  }

  // --- Stationarity: each variable's reduced cost must match which bound
  // (if any) the variable sits at. This is dual feasibility w.r.t. the
  // bound constraints plus their complementary slackness in one test. ------
  const double feas_tol = tols_.feasibility;
  for (std::size_t j = 0; j < nv; ++j) {
    const double lo = lob[j];
    const double hi = hib[j];
    const double zj = zp[j];
    const bool at_lo = std::isfinite(lo) && xp[j] - lo <= feas_tol * (1.0 + std::fabs(lo));
    const bool at_hi = std::isfinite(hi) && hi - xp[j] <= feas_tol * (1.0 + std::fabs(hi));
    double viol = 0.0;
    if (at_lo && at_hi) {
      viol = 0.0;  // fixed variable: any reduced cost is consistent
    } else if (at_lo) {
      viol = std::max(0.0, -zj);
    } else if (at_hi) {
      viol = std::max(0.0, zj);
    } else {
      viol = std::fabs(zj);
    }
    bump_ratio(dual_residual, viol, zdp[j]);

    // Bound contribution to the dual objective: a variable pinned by its
    // reduced cost contributes z_j times the bound it is pinned to.
    if (std::fabs(zj) <= tols_.dual * zdp[j]) continue;
    if (zj > 0.0 && std::isfinite(lo)) dual_obj += zj * lo;
    if (zj < 0.0 && std::isfinite(hi)) dual_obj += zj * hi;
  }
  cert.dual_residual = dual_residual;

  const double primal_obj = s * cx;
  bump(cert.objective_gap, std::fabs(primal_obj - dual_obj) /
                               (1.0 + std::fabs(primal_obj) + std::fabs(dual_obj)));

  if (cert.primal_residual > tols_.feasibility)
    cert.reject = "claimed-optimal point is primal infeasible";
  else if (cert.dual_residual > tols_.dual)
    cert.reject = "duals are sign-infeasible or reduced costs are non-stationary";
  else if (cert.complementarity_residual > tols_.complementarity)
    cert.reject = "complementary slackness violated";
  else if (cert.objective_gap > tols_.objective_gap)
    cert.reject = "primal-dual objective gap too large";
  cert.certified = cert.reject == nullptr;
  return cert;
}

Certificate Verifier::certify_admission(const Problem& p, const std::vector<double>& x,
                                        double objective) {
  Certificate cert;
  cert.claim = Certificate::Claim::Optimal;
  cert.primal_only = true;

  const std::size_t nv = p.num_variables();
  if (x.size() != nv) {
    cert.reject = "solution vector has the wrong dimension";
    return cert;
  }
  if (!std::isfinite(objective)) {
    cert.reject = "non-finite entry in claimed solution";
    return cert;
  }

  const std::vector<double>& lob = p.lower_bounds();
  const std::vector<double>& hib = p.upper_bounds();
  const std::vector<double>& cost = p.objective();

  double primal_residual = 0.0;
  double cx = 0.0;
  double xmag = 0.0;
  for (std::size_t j = 0; j < nv; ++j) {
    const double lo = lob[j];
    const double hi = hib[j];
    xmag += std::fabs(x[j]);
    bump_ratio(primal_residual, lo - x[j], 1.0 + std::fabs(lo) + std::fabs(x[j]));
    bump_ratio(primal_residual, x[j] - hi, 1.0 + std::fabs(hi) + std::fabs(x[j]));
    cx += cost[j] * x[j];
  }
  if (!std::isfinite(xmag)) {
    cert.reject = "non-finite entry in claimed solution";
    return cert;
  }

  const std::size_t nc = p.num_constraints();
  const Constraint* rows = p.constraints().data();
  const double* xp = x.data();
  for (std::size_t i = 0; i < nc; ++i) {
    const Constraint& con = rows[i];
    const std::size_t width = std::min(con.coeffs.size(), nv);
    const DotAbs row = vdot_abs(con.coeffs.data(), xp, width);
    double viol = 0.0;
    switch (con.rel) {
      case Relation::LessEqual: viol = row.value - con.rhs; break;
      case Relation::GreaterEqual: viol = con.rhs - row.value; break;
      case Relation::Equal: viol = std::fabs(row.value - con.rhs); break;
    }
    bump_ratio(primal_residual, viol, 1.0 + std::fabs(con.rhs) + row.magnitude);
  }
  cert.primal_residual = primal_residual;

  bump_ratio(cert.objective_gap, std::fabs(cx - objective),
             1.0 + std::fabs(cx) + std::fabs(objective));

  if (cert.primal_residual > tols_.feasibility)
    cert.reject = "claimed-optimal point is primal infeasible";
  else if (cert.objective_gap > tols_.objective_gap)
    cert.reject = "reported objective disagrees with c'x";
  cert.certified = cert.reject == nullptr;
  return cert;
}

Certificate Verifier::certify_infeasible(const Problem& p, const std::vector<double>& farkas) {
  Certificate cert;
  cert.claim = Certificate::Claim::Infeasible;

  if (p.num_variables() == 0) {
    // Constant problem: infeasibility is decidable by inspection.
    double worst = 0.0;
    for (std::size_t i = 0; i < p.num_constraints(); ++i)
      worst = std::max(worst, constant_row_violation(p.constraint(i)));
    cert.farkas_residual = worst;
    if (worst > tols_.feasibility) cert.certified = true;
    else cert.reject = "constant problem is feasible; infeasibility claim is wrong";
    return cert;
  }

  if (farkas.empty()) {
    cert.reject = "no Farkas certificate attached to the infeasibility claim";
    return cert;
  }
  if (!all_finite(farkas)) {
    cert.reject = "non-finite entry in Farkas certificate";
    return cert;
  }

  // Rebuild the standard form independently from the problem data; the
  // certificate lives in its row space.
  rebuild_standard_form(p, sf_);
  const std::size_t m = sf_.rows();
  if (farkas.size() != m) {
    cert.reject = "Farkas certificate has the wrong dimension";
    return cert;
  }

  double ynorm = 0.0;
  for (double y : farkas) ynorm = std::max(ynorm, std::fabs(y));
  if (ynorm == 0.0) {
    cert.reject = "Farkas certificate is identically zero";
    return cert;
  }

  // y'A_j <= 0 (up to slack) for every column of the real system -- the
  // artificial columns are not part of {A y = b, y >= 0}.
  for (std::size_t j = 0; j < sf_.cols(); ++j) {
    if (sf_.is_artificial[j]) continue;
    double t = 0.0, mag = 0.0;
    for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
      const double v = farkas[sf_.col_row[k]] * sf_.col_val[k];
      t += v;
      mag += std::fabs(v);
    }
    bump(cert.farkas_residual, std::max(0.0, t) / (ynorm + mag));
  }

  double sigma = 0.0, bnorm = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    sigma += farkas[i] * sf_.b[i];
    bnorm = std::max(bnorm, std::fabs(sf_.b[i]));
  }

  if (cert.farkas_residual > tols_.farkas)
    cert.reject = "Farkas certificate violates y'A <= 0";
  else if (sigma < tols_.farkas * ynorm * (1.0 + bnorm))
    cert.reject = "Farkas certificate has y'b <= 0: proves nothing";
  cert.certified = cert.reject == nullptr;
  return cert;
}

Certificate Verifier::certify_unbounded(const Problem& p, const std::vector<double>& x,
                                        const std::vector<double>& ray) {
  Certificate cert;
  cert.claim = Certificate::Claim::Unbounded;

  if (ray.empty()) {
    cert.reject = "no ray attached to the unboundedness claim";
    return cert;
  }
  if (!all_finite(ray) || !all_finite(x)) {
    cert.reject = "non-finite entry in unboundedness certificate";
    return cert;
  }

  // Unboundedness = a feasible point plus an improving recession ray.
  if (x.size() != p.num_variables()) {
    cert.reject = "no feasible point attached to the unboundedness claim";
    return cert;
  }
  {
    // Reuse the optimal-claim machinery for the primal feasibility part.
    Certificate feas = certify_optimal(p, x, {}, p.objective_value(x));
    cert.primal_residual = feas.primal_residual;
    if (feas.primal_residual > tols_.feasibility) {
      cert.reject = "claimed feasible point of the unbounded problem is infeasible";
      return cert;
    }
  }

  rebuild_standard_form(p, sf_);
  const std::size_t m = sf_.rows();
  const std::size_t n = sf_.cols();
  if (ray.size() != n) {
    cert.reject = "ray has the wrong dimension";
    return cert;
  }
  double dnorm = 0.0;
  for (double d : ray) dnorm = std::max(dnorm, std::fabs(d));
  if (dnorm == 0.0) {
    cert.reject = "ray is identically zero";
    return cert;
  }

  // d >= 0 and A d = 0 (checked scale-free on d / ||d||inf).
  z_.assign(m, 0.0);     // A d accumulator
  zden_.assign(m, 1.0);  // per-row magnitude of the cancellation
  double cd = 0.0, cd_mag = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = ray[j] / dnorm;
    bump(cert.farkas_residual, -d);
    if (d == 0.0) continue;
    for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
      const double v = sf_.col_val[k] * d;
      z_[sf_.col_row[k]] += v;
      zden_[sf_.col_row[k]] += std::fabs(v);
    }
    cd += sf_.c[j] * d;
    cd_mag += std::fabs(sf_.c[j] * d);
  }
  for (std::size_t i = 0; i < m; ++i) bump(cert.farkas_residual, std::fabs(z_[i]) / zden_[i]);

  if (cert.farkas_residual > tols_.farkas)
    cert.reject = "ray is not a non-negative recession direction (d >= 0, A d = 0)";
  else if (cd > -tols_.farkas * cd_mag)
    cert.reject = "ray does not improve the objective: c'd is not negative";
  cert.certified = cert.reject == nullptr;
  return cert;
}

}  // namespace agora::lp
