// problem.h -- declaration of a linear program in natural ("modeler") form:
//
//     min / max  c' x
//     subject to a_i' x {<=, =, >=} b_i      for each constraint i
//                lo_j <= x_j <= hi_j         for each variable j
//
// Bounds may be infinite on either side. The solvers convert this form to a
// canonical standard form internally (see standard_form.h).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/error.h"

namespace agora::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { Minimize, Maximize };
enum class Relation { LessEqual, Equal, GreaterEqual };

/// One linear constraint: coefficients over *all* variables (dense),
/// a relation, and a right-hand side.
struct Constraint {
  std::vector<double> coeffs;
  Relation rel = Relation::LessEqual;
  double rhs = 0.0;
  std::string name;
};

/// A linear program under construction. Add variables first, then
/// constraints (constraint coefficient vectors are sized to the variable
/// count at the time they are added and padded with zeros afterwards).
class Problem {
 public:
  explicit Problem(Sense sense = Sense::Minimize) : sense_(sense), id_(next_id()) {}

  // Copies get a fresh identity: (instance_id, structural_revision) must
  // uniquely name a structure snapshot, and a copy is free to diverge from
  // the original. Moves transfer the identity -- the structure moves with it.
  Problem(const Problem& o)
      : sense_(o.sense_), cost_(o.cost_), lo_(o.lo_), hi_(o.hi_),
        var_names_(o.var_names_), constraints_(o.constraints_), id_(next_id()) {}
  Problem& operator=(const Problem& o) {
    if (this == &o) return *this;
    sense_ = o.sense_;
    cost_ = o.cost_;
    lo_ = o.lo_;
    hi_ = o.hi_;
    var_names_ = o.var_names_;
    constraints_ = o.constraints_;
    id_ = next_id();
    structural_rev_ = 0;
    return *this;
  }
  Problem(Problem&&) = default;
  Problem& operator=(Problem&&) = default;

  Sense sense() const { return sense_; }
  void set_sense(Sense s) {
    sense_ = s;
    ++structural_rev_;
  }

  /// Identity of this Problem instance; fresh per construction and per copy.
  /// Together with structural_revision() it names a structure snapshot:
  /// every mutation except set_rhs() and a value-only set_bounds() (finite
  /// upper bound moved, lower bound untouched) bumps the revision, so a
  /// consumer that cached derived state under (id, revision) may skip
  /// rebuilding it when both still match and only re-read the constraint
  /// rhs and bound values. See repatch_standard_form_rhs() for the
  /// consumer this exists for.
  std::uint64_t instance_id() const { return id_; }
  std::uint64_t structural_revision() const { return structural_rev_; }

  /// Add a variable with bounds [lo, hi] and objective coefficient `cost`.
  /// Returns the variable's index. Names are debug-only: pass "" (or use the
  /// unnamed overload) on hot model-building paths and a synthetic "x<j>" is
  /// produced lazily if ever asked for.
  std::size_t add_variable(const std::string& name, double lo = 0.0, double hi = kInfinity,
                           double cost = 0.0);

  /// Unnamed variable: no per-variable string allocation.
  std::size_t add_variable(double lo, double hi = kInfinity, double cost = 0.0) {
    return add_variable(std::string(), lo, hi, cost);
  }

  /// Add a constraint with a dense coefficient vector. The vector may be
  /// shorter than the current variable count; missing entries are zero.
  std::size_t add_constraint(std::vector<double> coeffs, Relation rel, double rhs,
                             const std::string& name = "");

  /// Add a sparse constraint given (variable index, coefficient) terms.
  std::size_t add_constraint_sparse(const std::vector<std::pair<std::size_t, double>>& terms,
                                    Relation rel, double rhs, const std::string& name = "");

  void set_objective_coeff(std::size_t var, double cost);
  double objective_coeff(std::size_t var) const;

  void set_bounds(std::size_t var, double lo, double hi);

  /// Patch a constraint's right-hand side in place (coefficients and relation
  /// unchanged). This is the trace-loop path for re-solving the same model
  /// with a perturbed rhs without rebuilding it.
  void set_rhs(std::size_t i, double rhs);
  double lower_bound(std::size_t var) const { return lo_.at(var); }
  double upper_bound(std::size_t var) const { return hi_.at(var); }
  /// Bulk bound access for per-solve hot loops (certification runs on every
  /// enforcement solve; per-element checked accessors are measurable there).
  const std::vector<double>& lower_bounds() const { return lo_; }
  const std::vector<double>& upper_bounds() const { return hi_; }

  std::size_t num_variables() const { return lo_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  const Constraint& constraint(std::size_t i) const { return constraints_.at(i); }
  /// Bulk constraint access for per-solve hot loops (see lower_bounds()).
  const std::vector<Constraint>& constraints() const { return constraints_; }
  /// Debug-only accessor; synthesizes "x<j>" for unnamed variables.
  std::string variable_name(std::size_t j) const;
  const std::vector<double>& objective() const { return cost_; }

  /// Evaluate the objective at a point.
  double objective_value(const std::vector<double>& x) const;

  /// Maximum constraint/bound violation at a point (0 means feasible).
  double max_violation(const std::vector<double>& x) const;

  /// Sanity checks (NaN coefficients, inverted bounds). Throws on failure.
  void validate() const;

 private:
  static std::uint64_t next_id();

  Sense sense_;
  std::vector<double> cost_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<std::string> var_names_;
  std::vector<Constraint> constraints_;
  std::uint64_t id_ = 0;
  std::uint64_t structural_rev_ = 0;
};

}  // namespace agora::lp
