// sparse_lu.h -- sparse LU factorization of a simplex basis with
// product-form eta updates.
//
// The revised simplex only ever needs three operations on the basis matrix
// B (the m columns of the standard form selected by the current basis):
//
//   FTRAN:  solve B x = v      (entering column, x_B recompute, refinement)
//   BTRAN:  solve B' y = c     (pricing multipliers, dual rows, Farkas)
//   UPDATE: replace one column of B after a pivot
//
// The historical implementation kept an explicit dense m x m inverse --
// O(m^2) memory and O(m^2) work per iteration regardless of sparsity, and
// O(m^3) per refactorization. This class keeps B = L U in sparse factored
// form instead:
//
//   * Factorization is right-looking Gaussian elimination with MARKOWITZ
//     pivoting: each step picks an admissible pivot minimizing the fill
//     bound (r_i - 1)(c_j - 1), subject to a threshold test |a_ij| >=
//     tau * max|row i| (tau = 0.1), so sparsity is preserved without giving
//     up numerical stability. Candidate rows are kept in count-ordered
//     buckets and the search stops after examining a handful of rows that
//     offered an admissible pivot (Suhl-style candidate cap), so a step
//     costs O(candidate row nnz), not O(m * nnz). L holds
//     the multipliers per elimination step, U the pivot rows; both are
//     stored as pooled sparse arrays whose capacity survives
//     refactorization (the solve loop allocates nothing at steady state).
//
//   * Pivots between refactorizations are absorbed as PRODUCT-FORM eta
//     vectors: replacing the basic column at position r by a column with
//     tableau form w = B^-1 a_q appends the elementary matrix E = I +
//     (w - e_r) e_r', so B_new = B_old E and both solves just sweep the eta
//     file (FTRAN forward, BTRAN in reverse, transposed). The eta vector IS
//     the ftran result the ratio test already computed, so an update costs
//     exactly one sparse copy. The classical Forrest-Tomlin refinement
//     (folding the spike into U to keep the file shorter) is deliberately
//     not implemented: the refactorization cadence (kRefactorInterval = 64,
//     plus the section-9 residual triggers in revised.cpp) bounds the eta
//     file far below where FT starts to win, and product form keeps every
//     update O(nnz(w)).
//
// The factorization is deterministic: identical input produces an identical
// pivot order, so solves are reproducible bit for bit across runs (the
// warm-start repeatability tests rely on this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/standard_form.h"

namespace agora::lp {

class SparseLu {
 public:
  /// Factorize the basis matrix whose i-th column is column basis[i] of
  /// sf's CSC mirror. Clears the eta file. Returns false when the basis is
  /// numerically singular (no admissible pivot at some step); the caller
  /// treats that exactly like a singular dense factorization.
  bool factorize(const StandardForm& sf, const std::vector<std::size_t>& basis);

  /// x := B^-1 x. On entry x is indexed by standard-form row; on exit by
  /// basis position. Applies the LU solve, then the eta file in order.
  void ftran(std::vector<double>& x) const;

  /// y := B^-T y. On entry y is indexed by basis position (a cost gather);
  /// on exit by standard-form row. Applies the eta file in reverse
  /// (transposed), then the LU transpose solve.
  void btran(std::vector<double>& y) const;

  /// Absorb a pivot: the basic column at position `pos` is replaced by a
  /// column whose current tableau form (B^-1 a_enter, etas included) is `w`.
  /// w[pos] must be the ratio-test pivot (nonzero). Entries with |w_i| <=
  /// drop are not stored -- they are at the level the dense path's denormal
  /// clamp already discards.
  void push_eta(std::size_t pos, const std::vector<double>& w, double drop);

  bool factorized() const { return dim_ > 0; }
  std::size_t dim() const { return dim_; }
  std::size_t eta_count() const { return eta_pos_.size(); }
  /// Nonzeros currently held in the eta file.
  std::size_t eta_nnz() const { return eta_idx_.size(); }
  /// Nonzeros of L + U (diagonals included) at the last factorization.
  std::size_t lu_nnz() const { return lu_nnz_; }
  /// Nonzeros of the basis columns handed to the last factorization; the
  /// difference lu_nnz() - basis_nnz() is the factorization fill-in.
  std::size_t basis_nnz() const { return basis_nnz_; }
  /// Cheap condition proxy: ||B||_inf scaled by the extreme U diagonals
  /// (|d|max / |d|min bounds the growth the elimination admitted).
  double condition_estimate() const;

 private:
  struct Entry {
    std::size_t col;
    double val;
  };

  std::size_t dim_ = 0;
  std::size_t lu_nnz_ = 0;
  std::size_t basis_nnz_ = 0;
  double bnorm_ = 0.0;     ///< ||B||_inf of the factored matrix.
  double udiag_max_ = 0.0;
  double udiag_min_ = 0.0;

  // L: per elimination step k, the multipliers (row, m) applied below the
  // pivot; stored pooled in step order.
  std::vector<std::size_t> l_start_;  ///< length dim_+1.
  std::vector<std::size_t> l_row_;
  std::vector<double> l_val_;
  // U: per step k, the pivot row (diag first), columns in basis-position
  // space; stored pooled in step order.
  std::vector<std::size_t> u_start_;  ///< length dim_+1.
  std::vector<std::size_t> u_col_;
  std::vector<double> u_val_;
  std::vector<double> u_diag_;        ///< per step.
  std::vector<std::size_t> pivot_row_;  ///< step -> standard-form row.
  std::vector<std::size_t> pivot_col_;  ///< step -> basis position.

  // Product-form eta file (cleared on factorize).
  std::vector<std::size_t> eta_start_;  ///< length eta_count()+1.
  std::vector<std::size_t> eta_pos_;    ///< leaving basis position per eta.
  std::vector<double> eta_pivot_;       ///< w[pos] per eta.
  std::vector<std::size_t> eta_idx_;
  std::vector<double> eta_val_;

  // Factorization workspace (capacity persists across refactorizations).
  std::vector<std::vector<Entry>> rows_;
  std::vector<std::size_t> row_count_, col_count_;
  std::vector<std::vector<std::size_t>> col_rows_;
  // Pivot-search acceleration: rows bucketed by current count, maintained
  // lazily (entries go stale when counts change and are dropped as the
  // search touches them). row_bucket_[i] is the count row i was last
  // enqueued under, so a row is never double-enqueued into its own bucket.
  std::vector<std::vector<std::size_t>> cnt_bucket_;
  std::vector<std::size_t> row_bucket_;
  std::vector<bool> row_alive_, col_alive_;
  std::vector<double> merge_val_;      ///< dense accumulator for row merges.
  std::vector<unsigned char> merge_mark_;
  std::vector<std::size_t> merge_cols_;
  // Solve scratch (mutable: ftran/btran are logically const).
  mutable std::vector<double> scratch_;
};

}  // namespace agora::lp
