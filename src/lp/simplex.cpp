#include "lp/simplex.h"

#include <cmath>
#include <limits>
#include <vector>

#include "lp/standard_form.h"
#include "util/matrix.h"

namespace agora::lp {

namespace {

/// Mutable tableau state for one solve.
struct Tableau {
  Matrix a;                      // m x n working matrix
  std::vector<double> rhs;       // length m, kept >= 0 (up to tolerance)
  std::vector<double> cost;      // reduced-cost row, length n
  double cost_rhs = 0.0;         // negative of current objective value
  std::vector<std::size_t> basis;  // length m: basic column per row

  std::size_t rows() const { return rhs.size(); }
  std::size_t cols() const { return cost.size(); }

  /// Pivot on (prow, pcol): make column pcol basic in row prow.
  void pivot(std::size_t prow, std::size_t pcol) {
    const std::size_t n = cols();
    const double pv = a.at_unchecked(prow, pcol);
    double* prow_ptr = a.row(prow).data();
    const double inv = 1.0 / pv;
    for (std::size_t j = 0; j < n; ++j) prow_ptr[j] *= inv;
    rhs[prow] *= inv;
    prow_ptr[pcol] = 1.0;  // kill round-off on the pivot element

    for (std::size_t i = 0; i < rows(); ++i) {
      if (i == prow) continue;
      const double f = a.at_unchecked(i, pcol);
      if (f == 0.0) continue;
      double* rowi = a.row(i).data();
      for (std::size_t j = 0; j < n; ++j) rowi[j] -= f * prow_ptr[j];
      rowi[pcol] = 0.0;
      rhs[i] -= f * rhs[prow];
      if (std::fabs(rhs[i]) < 1e-12) rhs[i] = 0.0;
    }
    const double cf = cost[pcol];
    if (cf != 0.0) {
      for (std::size_t j = 0; j < n; ++j) cost[j] -= cf * prow_ptr[j];
      cost[pcol] = 0.0;
      cost_rhs -= cf * rhs[prow];
    }
    basis[prow] = pcol;
  }

  /// Rebuild the cost row for objective `c` by pricing out basic columns.
  void load_objective(const std::vector<double>& c) {
    cost = c;
    cost_rhs = 0.0;
    for (std::size_t i = 0; i < rows(); ++i) {
      const double cb = c[basis[i]];
      if (cb == 0.0) continue;
      const double* rowi = a.row(i).data();
      for (std::size_t j = 0; j < cols(); ++j) cost[j] -= cb * rowi[j];
      cost_rhs -= cb * rhs[i];
    }
    for (std::size_t i = 0; i < rows(); ++i) cost[basis[i]] = 0.0;
  }
};

enum class PhaseOutcome { Optimal, Unbounded, IterationLimit };

/// Run simplex iterations until optimality (no negative reduced cost) or
/// failure. `allowed` masks which columns may enter (artificials are barred
/// from re-entering in phase 2).
PhaseOutcome run_phase(Tableau& t, const std::vector<bool>& allowed, const SolverOptions& opts,
                       std::uint64_t& iterations) {
  std::uint64_t degenerate_streak = 0;
  for (std::uint64_t it = 0; it < opts.max_iterations; ++it) {
    const bool bland = degenerate_streak >= opts.stall_threshold;

    // --- Entering variable -------------------------------------------------
    std::size_t enter = t.cols();
    if (bland) {
      for (std::size_t j = 0; j < t.cols(); ++j) {
        if (allowed[j] && t.cost[j] < -opts.tol) {
          enter = j;
          break;
        }
      }
    } else {
      double best = -opts.tol;
      for (std::size_t j = 0; j < t.cols(); ++j) {
        if (allowed[j] && t.cost[j] < best) {
          best = t.cost[j];
          enter = j;
        }
      }
    }
    if (enter == t.cols()) return PhaseOutcome::Optimal;

    // --- Ratio test ---------------------------------------------------------
    std::size_t leave_row = t.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows(); ++i) {
      const double aij = t.a.at_unchecked(i, enter);
      if (aij <= opts.tol) continue;
      const double ratio = t.rhs[i] / aij;
      const bool better =
          ratio < best_ratio - opts.tol ||
          // Tie-break on smallest basic index: Bland's rule when stalling,
          // and a deterministic choice otherwise.
          (ratio < best_ratio + opts.tol && leave_row < t.rows() &&
           t.basis[i] < t.basis[leave_row]);
      if (better) {
        best_ratio = ratio;
        leave_row = i;
      }
    }
    if (leave_row == t.rows()) return PhaseOutcome::Unbounded;

    degenerate_streak = best_ratio <= opts.tol ? degenerate_streak + 1 : 0;
    t.pivot(leave_row, enter);
    ++iterations;
  }
  return PhaseOutcome::IterationLimit;
}

}  // namespace

SolveResult SimplexSolver::solve(const Problem& p) const {
  SolveResult res;
  if (p.num_variables() == 0) {
    // Degenerate but legal: feasibility depends only on constant constraints.
    res.status = Status::Optimal;
    res.objective = 0.0;
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      const auto& c = p.constraint(i);
      const bool ok = (c.rel == Relation::LessEqual && 0.0 <= c.rhs + 1e-12) ||
                      (c.rel == Relation::GreaterEqual && 0.0 >= c.rhs - 1e-12) ||
                      (c.rel == Relation::Equal && std::fabs(c.rhs) <= 1e-12);
      if (!ok) res.status = Status::Infeasible;
    }
    return res;
  }

  StandardForm sf = build_standard_form(p);
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();

  Tableau t;
  t.a = sf.a;
  t.rhs = sf.b;
  t.basis = sf.initial_basis;
  t.cost.assign(n, 0.0);

  std::vector<bool> allow_all(n, true);

  // --- Phase 1: drive artificials to zero. ---------------------------------
  if (sf.has_artificials()) {
    std::vector<double> phase1_cost(n, 0.0);
    for (std::size_t j = 0; j < n; ++j)
      if (sf.is_artificial[j]) phase1_cost[j] = 1.0;
    t.load_objective(phase1_cost);

    const PhaseOutcome out = run_phase(t, allow_all, opts_, res.iterations);
    if (out == PhaseOutcome::IterationLimit) {
      res.status = Status::IterationLimit;
      return res;
    }
    AGORA_INVARIANT(out != PhaseOutcome::Unbounded, "phase-1 objective is bounded below by 0");
    const double art_sum = -t.cost_rhs;  // cost_rhs holds -objective
    if (art_sum > 1e-7) {
      res.status = Status::Infeasible;
      return res;
    }
    // Pivot remaining basic artificials (at zero level) out of the basis
    // where possible; rows where no structural pivot exists are redundant
    // and harmless (the artificial stays basic at zero and is barred from
    // growing because phase 2 forbids artificial entry and rhs stays >= 0).
    for (std::size_t i = 0; i < m; ++i) {
      if (!sf.is_artificial[t.basis[i]]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (sf.is_artificial[j]) continue;
        if (std::fabs(t.a.at_unchecked(i, j)) > 1e-7) {
          t.pivot(i, j);
          break;
        }
      }
    }
  }

  // --- Phase 2: optimize the real objective. --------------------------------
  std::vector<bool> allowed(n, true);
  for (std::size_t j = 0; j < n; ++j)
    if (sf.is_artificial[j]) allowed[j] = false;
  t.load_objective(sf.c);

  const PhaseOutcome out = run_phase(t, allowed, opts_, res.iterations);
  switch (out) {
    case PhaseOutcome::IterationLimit:
      res.status = Status::IterationLimit;
      return res;
    case PhaseOutcome::Unbounded:
      res.status = Status::Unbounded;
      return res;
    case PhaseOutcome::Optimal:
      break;
  }

  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) y[t.basis[i]] = t.rhs[i];
  res.x = recover_solution(sf, y, p.num_variables());
  res.objective = sf.obj_scale * (-t.cost_rhs + sf.c0);

  // Shadow prices: the final reduced cost of row i's *initial* basic column
  // (slack or artificial, both with coefficient +e_i and phase-2 cost 0) is
  // -y_i where y = c_B B^{-1} is the standard-form dual. Map back through
  // row negation and the objective sense.
  res.duals.assign(p.num_constraints(), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t origin = sf.row_origin[i];
    if (origin == static_cast<std::size_t>(-1)) continue;  // bound row
    const double y_std = -t.cost[sf.initial_basis[i]];
    res.duals[origin] = sf.obj_scale * (sf.row_negated[i] ? -y_std : y_std);
  }
  res.status = Status::Optimal;
  return res;
}

}  // namespace agora::lp
