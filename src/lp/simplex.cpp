#include "lp/simplex.h"

#include <cmath>
#include <limits>
#include <vector>

#include "lp/standard_form.h"
#include "lp/tolerances.h"
#include "util/matrix.h"

namespace agora::lp {

namespace {

/// Mutable tableau state for one solve.
struct Tableau {
  Matrix a;                      // m x n working matrix
  std::vector<double> rhs;       // length m, kept >= 0 (up to tolerance)
  std::vector<double> cost;      // reduced-cost row, length n
  double cost_rhs = 0.0;         // negative of current objective value
  std::vector<std::size_t> basis;  // length m: basic column per row
  double drop = 1e-12;             // denormal clamp (Tolerances::drop)

  std::size_t rows() const { return rhs.size(); }
  std::size_t cols() const { return cost.size(); }

  /// Pivot on (prow, pcol): make column pcol basic in row prow.
  void pivot(std::size_t prow, std::size_t pcol) {
    const std::size_t n = cols();
    const double pv = a.at_unchecked(prow, pcol);
    double* prow_ptr = a.row(prow).data();
    const double inv = 1.0 / pv;
    for (std::size_t j = 0; j < n; ++j) prow_ptr[j] *= inv;
    rhs[prow] *= inv;
    prow_ptr[pcol] = 1.0;  // kill round-off on the pivot element

    for (std::size_t i = 0; i < rows(); ++i) {
      if (i == prow) continue;
      const double f = a.at_unchecked(i, pcol);
      if (f == 0.0) continue;
      double* rowi = a.row(i).data();
      for (std::size_t j = 0; j < n; ++j) rowi[j] -= f * prow_ptr[j];
      rowi[pcol] = 0.0;
      rhs[i] -= f * rhs[prow];
      if (std::fabs(rhs[i]) < drop) rhs[i] = 0.0;
    }
    const double cf = cost[pcol];
    if (cf != 0.0) {
      for (std::size_t j = 0; j < n; ++j) cost[j] -= cf * prow_ptr[j];
      cost[pcol] = 0.0;
      cost_rhs -= cf * rhs[prow];
    }
    basis[prow] = pcol;
  }

  /// Rebuild the cost row for objective `c` by pricing out basic columns.
  void load_objective(const std::vector<double>& c) {
    cost = c;
    cost_rhs = 0.0;
    for (std::size_t i = 0; i < rows(); ++i) {
      const double cb = c[basis[i]];
      if (cb == 0.0) continue;
      const double* rowi = a.row(i).data();
      for (std::size_t j = 0; j < cols(); ++j) cost[j] -= cb * rowi[j];
      cost_rhs -= cb * rhs[i];
    }
    for (std::size_t i = 0; i < rows(); ++i) cost[basis[i]] = 0.0;
  }
};

enum class PhaseOutcome { Optimal, Unbounded, IterationLimit };

/// Run simplex iterations until optimality (no negative reduced cost) or
/// failure. `allowed` masks which columns may enter (artificials are barred
/// from re-entering in phase 2). On Unbounded, `*unbounded_enter` receives
/// the entering column whose tableau column had no blocking row.
PhaseOutcome run_phase(Tableau& t, const std::vector<bool>& allowed, const SolverOptions& opts,
                       std::uint64_t& iterations, SolveStats& stats,
                       std::size_t* unbounded_enter = nullptr) {
  std::uint64_t degenerate_streak = 0;
  for (std::uint64_t it = 0; it < opts.max_iterations; ++it) {
    const bool bland = degenerate_streak >= opts.stall_threshold;

    // --- Entering variable -------------------------------------------------
    std::size_t enter = t.cols();
    if (bland) {
      for (std::size_t j = 0; j < t.cols(); ++j) {
        if (allowed[j] && t.cost[j] < -opts.tol) {
          enter = j;
          break;
        }
      }
    } else {
      double best = -opts.tol;
      for (std::size_t j = 0; j < t.cols(); ++j) {
        if (allowed[j] && t.cost[j] < best) {
          best = t.cost[j];
          enter = j;
        }
      }
    }
    if (enter == t.cols()) return PhaseOutcome::Optimal;

    // --- Ratio test ---------------------------------------------------------
    std::size_t leave_row = t.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows(); ++i) {
      const double aij = t.a.at_unchecked(i, enter);
      if (aij <= opts.tol) continue;
      const double ratio = t.rhs[i] / aij;
      const bool better =
          ratio < best_ratio - opts.tol ||
          // Tie-break on smallest basic index: Bland's rule when stalling,
          // and a deterministic choice otherwise.
          (ratio < best_ratio + opts.tol && leave_row < t.rows() &&
           t.basis[i] < t.basis[leave_row]);
      if (better) {
        best_ratio = ratio;
        leave_row = i;
      }
    }
    if (leave_row == t.rows()) {
      if (unbounded_enter) *unbounded_enter = enter;
      return PhaseOutcome::Unbounded;
    }

    degenerate_streak = best_ratio <= opts.tol ? degenerate_streak + 1 : 0;
    if (bland) ++stats.bland_pivots;
    t.pivot(leave_row, enter);
    ++iterations;
  }
  return PhaseOutcome::IterationLimit;
}

}  // namespace

SolveResult SimplexSolver::solve(const Problem& p) const {
  SolveResult res;
  if (p.num_variables() == 0) {
    // Degenerate but legal: feasibility depends only on constant constraints.
    res.status = Status::Optimal;
    res.objective = 0.0;
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      const auto& c = p.constraint(i);
      const double tol = scaled(opts_.tols.drop, std::fabs(c.rhs));
      const bool ok = (c.rel == Relation::LessEqual && 0.0 <= c.rhs + tol) ||
                      (c.rel == Relation::GreaterEqual && 0.0 >= c.rhs - tol) ||
                      (c.rel == Relation::Equal && std::fabs(c.rhs) <= tol);
      if (!ok) res.status = Status::Infeasible;
    }
    return res;
  }

  StandardForm sf = build_standard_form(p);
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();

  Tableau t;
  t.a = sf.a;
  t.rhs = sf.b;
  t.basis = sf.initial_basis;
  t.cost.assign(n, 0.0);
  t.drop = opts_.tols.drop;

  double bnorm = 0.0;
  for (double b : sf.b) bnorm = std::max(bnorm, std::fabs(b));

  std::vector<bool> allow_all(n, true);

  // --- Phase 1: drive artificials to zero. ---------------------------------
  if (sf.has_artificials()) {
    std::vector<double> phase1_cost(n, 0.0);
    for (std::size_t j = 0; j < n; ++j)
      if (sf.is_artificial[j]) phase1_cost[j] = 1.0;
    t.load_objective(phase1_cost);

    const PhaseOutcome out = run_phase(t, allow_all, opts_, res.iterations, res.stats);
    if (out == PhaseOutcome::IterationLimit) {
      res.status = Status::IterationLimit;
      return res;
    }
    AGORA_INVARIANT(out != PhaseOutcome::Unbounded, "phase-1 objective is bounded below by 0");
    const double art_sum = -t.cost_rhs;  // cost_rhs holds -objective
    if (art_sum > scaled(opts_.tols.artificial, bnorm)) {
      // Farkas certificate from the phase-1 duals: the final reduced cost of
      // row i's initial basic column (coefficient +e_i) is c1_j - y_i, so
      // y_i = c1[init_i] - cost[init_i]. At phase-1 optimality y'A_j <= 0
      // for every real column and y'b = art_sum > 0.
      res.farkas.assign(m, 0.0);
      for (std::size_t i = 0; i < m; ++i)
        res.farkas[i] = phase1_cost[sf.initial_basis[i]] - t.cost[sf.initial_basis[i]];
      res.status = Status::Infeasible;
      return res;
    }
    // Pivot remaining basic artificials (at zero level) out of the basis
    // where possible; rows where no structural pivot exists are redundant
    // and harmless (the artificial stays basic at zero and is barred from
    // growing because phase 2 forbids artificial entry and rhs stays >= 0).
    for (std::size_t i = 0; i < m; ++i) {
      if (!sf.is_artificial[t.basis[i]]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (sf.is_artificial[j]) continue;
        if (std::fabs(t.a.at_unchecked(i, j)) > opts_.tols.pivot_out) {
          t.pivot(i, j);
          break;
        }
      }
    }
  }

  // --- Phase 2: optimize the real objective. --------------------------------
  std::vector<bool> allowed(n, true);
  for (std::size_t j = 0; j < n; ++j)
    if (sf.is_artificial[j]) allowed[j] = false;
  t.load_objective(sf.c);

  std::size_t unbounded_enter = n;
  const PhaseOutcome out = run_phase(t, allowed, opts_, res.iterations, res.stats,
                                     &unbounded_enter);
  switch (out) {
    case PhaseOutcome::IterationLimit:
      res.status = Status::IterationLimit;
      return res;
    case PhaseOutcome::Unbounded: {
      // Ray certificate: the entering column q had no blocking row, so
      // d_q = 1, d_{basis[i]} = -a(i, q) is a non-negative recession
      // direction with A d = 0 and c'd < 0; the current basic point is the
      // feasible point it improves from.
      res.ray.assign(n, 0.0);
      res.ray[unbounded_enter] = 1.0;
      for (std::size_t i = 0; i < m; ++i) {
        double v = -t.a.at_unchecked(i, unbounded_enter);
        if (std::fabs(v) < opts_.tols.drop) v = 0.0;
        res.ray[t.basis[i]] = v;
      }
      std::vector<double> ypoint(n, 0.0);
      for (std::size_t i = 0; i < m; ++i) ypoint[t.basis[i]] = t.rhs[i];
      res.x = recover_solution(sf, ypoint, p.num_variables());
      res.status = Status::Unbounded;
      return res;
    }
    case PhaseOutcome::Optimal:
      break;
  }

  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) y[t.basis[i]] = t.rhs[i];
  res.x = recover_solution(sf, y, p.num_variables());
  res.objective = sf.obj_scale * (-t.cost_rhs + sf.c0);

  // Shadow prices: the final reduced cost of row i's *initial* basic column
  // (slack or artificial, both with coefficient +e_i and phase-2 cost 0) is
  // -y_i where y = c_B B^{-1} is the standard-form dual. Map back through
  // row negation and the objective sense.
  res.duals.assign(p.num_constraints(), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t origin = sf.row_origin[i];
    if (origin == static_cast<std::size_t>(-1)) continue;  // bound row
    const double y_std = -t.cost[sf.initial_basis[i]];
    res.duals[origin] = sf.obj_scale * (sf.row_negated[i] ? -y_std : y_std);
  }
  res.status = Status::Optimal;
  return res;
}

}  // namespace agora::lp
