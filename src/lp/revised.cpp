#include "lp/revised.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "lp/standard_form.h"
#include "lp/tolerances.h"
#include "util/matrix.h"

namespace agora::lp {

namespace {

/// x_B = B^-1 b (vectorized dot per binv row) with the denormal clamp
/// refactorize() has always used, writing into reused storage.
void compute_xb(const StandardForm& sf, SolveWorkspace& W, double drop) {
  const std::size_t m = sf.rows();
  W.xb.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) W.xb[r] = vdot(W.binv.row(r), sf.b);
  for (double& v : W.xb)
    if (std::fabs(v) < drop) v = 0.0;
}

/// Rebuild binv and xb from the basis via LU factorization. Resets the
/// cross-solve pivot counter. When `stats` is given, counts the rebuild and
/// refreshes the cheap condition estimate ||B||_inf * ||B^-1||_inf.
bool refactorize(const StandardForm& sf, SolveWorkspace& W, double drop,
                 SolveStats* stats = nullptr) {
  const std::size_t m = sf.rows();
  W.bmat.assign(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t r = 0; r < m; ++r)
      W.bmat.at_unchecked(r, i) = sf.a.at_unchecked(r, W.basis[i]);
  LuFactorization lu(W.bmat);
  if (lu.singular()) return false;
  W.binv.assign(m, m);
  std::vector<double> e(m, 0.0);
  for (std::size_t col = 0; col < m; ++col) {
    e[col] = 1.0;
    const std::vector<double> x = lu.solve(e);
    e[col] = 0.0;
    for (std::size_t r = 0; r < m; ++r) W.binv.at_unchecked(r, col) = x[r];
  }
  compute_xb(sf, W, drop);
  W.pivots_since_factor = 0;
  if (stats) {
    ++stats->refactorizations;
    double bn = 0.0, in = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      double brow = 0.0, irow = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        brow += std::fabs(W.bmat.at_unchecked(r, k));
        irow += std::fabs(W.binv.at_unchecked(r, k));
      }
      bn = std::max(bn, brow);
      in = std::max(in, irow);
    }
    stats->condition_estimate = bn * in;
  }
  return true;
}

/// Relative residual ||b - B x_B||_inf / (1 + ||b||_inf). Leaves the raw
/// residual vector in W.resid so a refinement step can reuse it. Pure read
/// of the solve state: calling it never perturbs the iteration.
double xb_residual(const StandardForm& sf, SolveWorkspace& W) {
  const std::size_t m = sf.rows();
  W.resid.assign(m, 0.0);
  double bnorm = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    W.resid[r] = sf.b[r];
    bnorm = std::max(bnorm, std::fabs(sf.b[r]));
  }
  for (std::size_t i = 0; i < m; ++i) {
    const double x = W.xb[i];
    if (x == 0.0) continue;
    const std::size_t col = W.basis[i];
    for (std::size_t t = sf.col_start[col]; t < sf.col_start[col + 1]; ++t)
      W.resid[sf.col_row[t]] -= sf.col_val[t] * x;
  }
  double rnorm = 0.0;
  for (double v : W.resid) rnorm = std::max(rnorm, std::fabs(v));
  return rnorm / (1.0 + bnorm);
}

/// Numerical self-check on the basic solution: record the residual, rebuild
/// the inverse if it has drifted past tolerance, then apply one step of
/// iterative refinement (x_B += B^-1 (b - B x_B)) to squeeze out the
/// remaining error. On a healthy basis the residual is ~machine epsilon and
/// this is a cheap no-op-sized correction.
void refine_xb(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts,
               SolveStats& stats) {
  double rel = xb_residual(sf, W);
  stats.max_xb_residual = std::max(stats.max_xb_residual, rel);
  if (rel > opts.tols.refactor_residual) {
    ++stats.residual_refactorizations;
    if (!refactorize(sf, W, opts.tols.drop, &stats)) return;
    rel = xb_residual(sf, W);
  }
  if (rel == 0.0) return;
  ++stats.refinement_steps;
  const std::size_t m = sf.rows();
  for (std::size_t r = 0; r < m; ++r) {
    W.xb[r] += vdot(W.binv.row(r), W.resid);
    if (std::fabs(W.xb[r]) < opts.tols.drop) W.xb[r] = 0.0;
  }
}

/// w = B^-1 A_col over the column's nonzeros (CSC). Iterates binv by rows --
/// each row is contiguous, so the gather over the column's row indices stays
/// inside one cache line run instead of striding the whole inverse (the
/// compact allocation model's columns are dense: one demand entry plus a
/// perturbation entry per participant).
void ftran(const StandardForm& sf, SolveWorkspace& W, std::size_t col) {
  const std::size_t m = sf.rows();
  const std::size_t start = sf.col_start[col];
  const std::size_t nnz = sf.col_start[col + 1] - start;
  const std::size_t* idx = sf.col_row.data() + start;
  const double* val = sf.col_val.data() + start;
  W.w.resize(m);
  for (std::size_t r = 0; r < m; ++r)
    W.w[r] = gather_dot(&W.binv.at_unchecked(r, 0), idx, val, nnz);
}

/// y' = c_B' B^-1 into W.y (vectorized axpy per contributing binv row).
void btran(const StandardForm& sf, SolveWorkspace& W) {
  const std::size_t m = sf.rows();
  W.y.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double c = W.cb[r];
    if (c == 0.0) continue;
    vaxpy(c, W.binv.row(r), std::span<double>(W.y));
  }
}

/// Reduced cost d_j = c_j - y' A_j over the column's nonzeros.
double reduced_cost(const StandardForm& sf, const SolveWorkspace& W,
                    const std::vector<double>& cost, std::size_t j) {
  const std::size_t start = sf.col_start[j];
  return cost[j] - gather_dot(W.y.data(), sf.col_row.data() + start,
                              sf.col_val.data() + start, sf.col_start[j + 1] - start);
}

/// Elementary update of binv and xb after column `enter` (with tableau
/// column W.w) replaces the basic variable of row `leave`.
void update(SolveWorkspace& W, std::size_t leave, std::size_t enter, double drop) {
  const std::size_t m = W.basis.size();
  const double pivot = W.w[leave];
  const double inv = 1.0 / pivot;
  for (std::size_t k = 0; k < m; ++k) W.binv.at_unchecked(leave, k) *= inv;
  W.xb[leave] *= inv;
  for (std::size_t r = 0; r < m; ++r) {
    if (r == leave) continue;
    const double f = W.w[r];
    if (f == 0.0) continue;
    vaxpy(-f, W.binv.row(leave), W.binv.row(r));
    W.xb[r] -= f * W.xb[leave];
    if (std::fabs(W.xb[r]) < drop) W.xb[r] = 0.0;
  }
  W.basis[leave] = enter;
  ++W.pivots_since_factor;
}

enum class PhaseOutcome { Optimal, Unbounded, IterationLimit, NumericalFailure };

/// One simplex phase. On Unbounded, `*unbounded_enter` receives the entering
/// column whose tableau column (still in W.w) had no blocking row -- the raw
/// material of the unboundedness ray.
PhaseOutcome run_phase(const StandardForm& sf, SolveWorkspace& W,
                       const std::vector<double>& cost, const SolverOptions& opts,
                       std::uint64_t& iterations, SolveStats& stats,
                       std::size_t* unbounded_enter = nullptr) {
  std::uint64_t degenerate_streak = 0;
  std::uint64_t since_refactor = 0;
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();
  W.in_basis.assign(n, false);
  for (std::size_t b : W.basis) W.in_basis[b] = true;

  for (std::uint64_t it = 0; it < opts.max_iterations; ++it) {
    if (since_refactor >= RevisedSimplexSolver::kRefactorInterval) {
      if (!refactorize(sf, W, opts.tols.drop, &stats)) return PhaseOutcome::NumericalFailure;
      since_refactor = 0;
    } else if (W.pivots_since_factor > 0) {
      // Residual-triggered refactorization: elementary updates accumulate
      // drift between the periodic rebuilds; catch it as soon as the basic
      // solution stops satisfying its own defining system.
      const double rel = xb_residual(sf, W);
      stats.max_xb_residual = std::max(stats.max_xb_residual, rel);
      if (rel > opts.tols.refactor_residual) {
        ++stats.residual_refactorizations;
        if (!refactorize(sf, W, opts.tols.drop, &stats)) return PhaseOutcome::NumericalFailure;
        since_refactor = 0;
      }
    }
    // Price: y = c_B' B^-1, then reduced costs d_j = c_j - y' A_j.
    W.cb.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) W.cb[r] = cost[W.basis[r]];
    btran(sf, W);

    const bool bland = degenerate_streak >= opts.stall_threshold;
    std::size_t enter = n;
    double best = -opts.tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (!W.allowed[j] || W.in_basis[j]) continue;
      const double d = reduced_cost(sf, W, cost, j);
      if (d < (bland ? -opts.tol : best)) {
        enter = j;
        if (bland) break;
        best = d;
      }
    }
    if (enter == n) return PhaseOutcome::Optimal;

    ftran(sf, W, enter);
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      if (W.w[r] <= opts.tol) continue;
      const double ratio = W.xb[r] / W.w[r];
      const bool better = ratio < best_ratio - opts.tol ||
                          (ratio < best_ratio + opts.tol && leave < m &&
                           W.basis[r] < W.basis[leave]);
      if (better) {
        best_ratio = ratio;
        leave = r;
      }
    }
    if (leave == m) {
      if (unbounded_enter) *unbounded_enter = enter;
      return PhaseOutcome::Unbounded;
    }

    degenerate_streak = best_ratio <= opts.tol ? degenerate_streak + 1 : 0;
    if (bland) ++stats.bland_pivots;
    W.in_basis[W.basis[leave]] = false;
    W.in_basis[enter] = true;
    update(W, leave, enter, opts.tols.drop);
    ++iterations;
    ++since_refactor;
  }
  return PhaseOutcome::IterationLimit;
}

/// Bounded dual-simplex repair: the warm basis is dual feasible for the
/// phase-2 cost (A and c are unchanged since it was optimal), so pivoting
/// negative basic variables out restores primal feasibility while keeping
/// optimality conditions. Returns false on any trouble (iteration bound,
/// no eligible entering column, numerical failure) -- the caller then falls
/// back to the cold two-phase start.
bool warm_repair(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts,
                 std::uint64_t& iterations, SolveStats& stats) {
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();
  const std::uint64_t limit = 2 * static_cast<std::uint64_t>(m) + 16;
  W.in_basis.assign(n, false);
  for (std::size_t b : W.basis) W.in_basis[b] = true;

  for (std::uint64_t it = 0; it < limit; ++it) {
    if (W.pivots_since_factor >= RevisedSimplexSolver::kRefactorInterval) {
      if (!refactorize(sf, W, opts.tols.drop, &stats)) return false;
    }
    // Most infeasible row leaves.
    std::size_t leave = m;
    double worst = -opts.tol;
    for (std::size_t r = 0; r < m; ++r) {
      if (W.xb[r] < worst) {
        worst = W.xb[r];
        leave = r;
      }
    }
    if (leave == m) return true;  // primal feasible again

    W.cb.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) W.cb[r] = sf.c[W.basis[r]];
    btran(sf, W);

    // Dual ratio test over the leaving row alpha_j = (B^-1)_leave . A_j.
    const std::span<const double> rho = W.binv.row(leave);
    std::size_t enter = n;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (W.in_basis[j] || sf.is_artificial[j]) continue;
      double alpha = 0.0;
      for (std::size_t t = sf.col_start[j]; t < sf.col_start[j + 1]; ++t)
        alpha += rho[sf.col_row[t]] * sf.col_val[t];
      if (alpha >= -opts.tol) continue;
      double d = reduced_cost(sf, W, sf.c, j);
      if (d < 0.0) d = 0.0;  // tolerance dust; the basis was optimal
      const double ratio = d / (-alpha);
      if (ratio < best_ratio - opts.tol ||
          (ratio < best_ratio + opts.tol && enter < n && j < enter)) {
        best_ratio = ratio;
        enter = j;
      }
    }
    if (enter == n) return false;  // row cannot be repaired: let cold path decide

    ftran(sf, W, enter);
    if (std::fabs(W.w[leave]) <= opts.tol) return false;  // numerical mismatch
    W.in_basis[W.basis[leave]] = false;
    W.in_basis[enter] = true;
    update(W, leave, enter, opts.tols.drop);
    ++iterations;
  }
  return false;
}

/// Re-seat the previous optimal basis against the rebuilt standard form.
/// Returns true when the workspace is primal feasible and phase 1 can be
/// skipped entirely.
bool try_warm_start(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts,
                    std::uint64_t& iterations, SolveStats& stats) {
  const std::size_t m = sf.rows();
  if (W.warm_basis.size() != m) return false;
  W.basis = W.warm_basis;
  if (W.pivots_since_factor >= RevisedSimplexSolver::kRefactorInterval) {
    if (!refactorize(sf, W, opts.tols.drop, &stats)) return false;
  } else {
    // The basis matrix is unchanged (same columns of the same A), so the
    // retained inverse is still exact: only x_B = B^-1 b must be recomputed.
    compute_xb(sf, W, opts.tols.drop);
    // Self-heal a drifted (or corrupted) retained inverse: if the basic
    // solution does not satisfy B x_B = b to tolerance, the cached inverse
    // is no longer trustworthy -- rebuild it from the basis before pricing
    // a single column against it.
    const double rel = xb_residual(sf, W);
    stats.max_xb_residual = std::max(stats.max_xb_residual, rel);
    if (rel > opts.tols.refactor_residual) {
      ++stats.residual_refactorizations;
      if (!refactorize(sf, W, opts.tols.drop, &stats)) return false;
    }
  }
  double bnorm = 0.0;
  for (std::size_t r = 0; r < m; ++r) bnorm = std::max(bnorm, std::fabs(sf.b[r]));
  double min_xb = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    // A basic artificial pushed positive means an original row is violated
    // at this basis; that needs phase 1, not repair.
    if (sf.is_artificial[W.basis[r]] && W.xb[r] > scaled(opts.tols.artificial, bnorm))
      return false;
    min_xb = std::min(min_xb, W.xb[r]);
  }
  if (min_xb >= -opts.tol) return true;
  return warm_repair(sf, W, opts, iterations, stats);
}

}  // namespace

SolveResult RevisedSimplexSolver::solve(const Problem& p) const { return solve(p, nullptr); }

SolveResult RevisedSimplexSolver::solve(const Problem& p, SolveWorkspace* ws) const {
  SolveResult res;
  if (p.num_variables() == 0) {
    res.status = Status::Optimal;
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      const auto& c = p.constraint(i);
      const double tol = scaled(opts_.tols.drop, std::fabs(c.rhs));
      const bool ok = (c.rel == Relation::LessEqual && 0.0 <= c.rhs + tol) ||
                      (c.rel == Relation::GreaterEqual && 0.0 >= c.rhs - tol) ||
                      (c.rel == Relation::Equal && std::fabs(c.rhs) <= tol);
      if (!ok) res.status = Status::Infeasible;
    }
    return res;
  }

  std::optional<SolveWorkspace> local;
  SolveWorkspace& W = ws ? *ws : local.emplace();
  rebuild_standard_form(p, W.sf);
  const StandardForm& sf = W.sf;
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();

  double bnorm = 0.0;
  for (std::size_t r = 0; r < m; ++r) bnorm = std::max(bnorm, std::fabs(sf.b[r]));

  // Warm start only when the previous optimum used the exact same (A, c):
  // the fingerprint keys on the matrix and objective, so bounds/rhs motion
  // (the trace-loop perturbation) warms up while anything else cold-starts.
  bool warmed = false;
  if (ws && W.warm && W.warm_rows == m && W.warm_cols == n &&
      W.warm_fingerprint == sf.fingerprint) {
    W.warm = false;  // re-established only if this solve reaches optimality
    warmed = try_warm_start(sf, W, opts_, res.iterations, res.stats);
  } else if (ws) {
    W.warm = false;
  }

  if (!warmed) {
    W.basis = sf.initial_basis;
    if (!refactorize(sf, W, opts_.tols.drop, &res.stats)) {
      // The initial slack/artificial basis is an identity; failure here would
      // be a construction bug.
      res.status = Status::Infeasible;
      return res;
    }

    if (sf.has_artificials()) {
      W.cost1.assign(n, 0.0);
      for (std::size_t j = 0; j < n; ++j)
        if (sf.is_artificial[j]) W.cost1[j] = 1.0;
      W.allowed.assign(n, true);
      const PhaseOutcome out = run_phase(sf, W, W.cost1, opts_, res.iterations, res.stats);
      if (out == PhaseOutcome::IterationLimit || out == PhaseOutcome::NumericalFailure) {
        res.status = Status::IterationLimit;
        return res;
      }
      double art_sum = 0.0;
      for (std::size_t r = 0; r < m; ++r)
        if (sf.is_artificial[W.basis[r]]) art_sum += W.xb[r];
      if (art_sum > scaled(opts_.tols.artificial, bnorm)) {
        // Phase 1 ended at a positive artificial sum: the problem is
        // infeasible, and the phase-1 duals y = c1_B' B^-1 are a Farkas
        // certificate -- every real column has non-negative phase-1 reduced
        // cost (y'A_j <= 0) while y'b equals the positive artificial sum.
        W.cb.assign(m, 0.0);
        for (std::size_t r = 0; r < m; ++r) W.cb[r] = W.cost1[W.basis[r]];
        btran(sf, W);
        res.farkas = W.y;
        res.status = Status::Infeasible;
        return res;
      }
    }
  }

  W.allowed.assign(n, true);
  for (std::size_t j = 0; j < n; ++j)
    if (sf.is_artificial[j]) W.allowed[j] = false;

  std::size_t unbounded_enter = n;
  const PhaseOutcome out =
      run_phase(sf, W, sf.c, opts_, res.iterations, res.stats, &unbounded_enter);
  switch (out) {
    case PhaseOutcome::IterationLimit:
    case PhaseOutcome::NumericalFailure:
      res.status = Status::IterationLimit;
      return res;
    case PhaseOutcome::Unbounded: {
      // Certificate: the entering column's tableau column w = B^-1 A_q had
      // no blocking row, so d with d_q = 1, d_{basis[r]} = -w_r is a
      // non-negative recession direction with A d = 0 and c'd < 0. The
      // current basic point (feasible by phase invariant) rides along as
      // the point the ray improves from.
      res.ray.assign(n, 0.0);
      res.ray[unbounded_enter] = 1.0;
      for (std::size_t r = 0; r < m; ++r) {
        double v = -W.w[r];
        if (std::fabs(v) < opts_.tols.drop) v = 0.0;
        res.ray[W.basis[r]] = v;
      }
      W.ysol.assign(n, 0.0);
      for (std::size_t r = 0; r < m; ++r) W.ysol[W.basis[r]] = W.xb[r];
      res.x = recover_solution(sf, W.ysol, p.num_variables());
      res.status = Status::Unbounded;
      return res;
    }
    case PhaseOutcome::Optimal:
      break;
  }

  // Numerical self-check + one refinement step before the answer leaves the
  // solver (see refine_xb).
  refine_xb(sf, W, opts_, res.stats);

  W.ysol.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) W.ysol[W.basis[r]] = W.xb[r];
  res.x = recover_solution(sf, W.ysol, p.num_variables());
  double obj = sf.c0;
  for (std::size_t j = 0; j < n; ++j) obj += sf.c[j] * W.ysol[j];
  res.objective = sf.obj_scale * obj;

  // Shadow prices: y = c_B' B^{-1}, mapped through row negation and sense.
  {
    W.cb.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) W.cb[r] = sf.c[W.basis[r]];
    btran(sf, W);
    res.duals.assign(p.num_constraints(), 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t origin = sf.row_origin[r];
      if (origin == static_cast<std::size_t>(-1)) continue;
      res.duals[origin] = sf.obj_scale * (sf.row_negated[r] ? -W.y[r] : W.y[r]);
    }
  }
  res.status = Status::Optimal;

  if (ws) {
    W.warm_basis = W.basis;
    W.warm_rows = m;
    W.warm_cols = n;
    W.warm_fingerprint = sf.fingerprint;
    W.warm = true;
  }
  return res;
}

}  // namespace agora::lp
