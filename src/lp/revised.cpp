#include "lp/revised.h"

#include <cmath>
#include <limits>
#include <vector>

#include "lp/standard_form.h"
#include "util/matrix.h"

namespace agora::lp {

namespace {

struct RevisedState {
  const StandardForm* sf = nullptr;
  std::vector<std::size_t> basis;  // length m
  Matrix binv;                     // m x m basis inverse
  std::vector<double> xb;          // current basic solution B^-1 b

  std::size_t m() const { return basis.size(); }
  std::size_t n() const { return sf->cols(); }

  /// Rebuild binv and xb from the basis via LU factorization.
  bool refactorize() {
    const std::size_t mm = m();
    Matrix bmat(mm, mm);
    for (std::size_t i = 0; i < mm; ++i)
      for (std::size_t r = 0; r < mm; ++r)
        bmat.at_unchecked(r, i) = sf->a.at_unchecked(r, basis[i]);
    LuFactorization lu(bmat);
    if (lu.singular()) return false;
    binv = Matrix(mm, mm);
    std::vector<double> e(mm, 0.0);
    for (std::size_t col = 0; col < mm; ++col) {
      e[col] = 1.0;
      const std::vector<double> x = lu.solve(e);
      e[col] = 0.0;
      for (std::size_t r = 0; r < mm; ++r) binv.at_unchecked(r, col) = x[r];
    }
    xb = binv * std::span<const double>(sf->b);
    for (double& v : xb)
      if (std::fabs(v) < 1e-12) v = 0.0;
    return true;
  }

  /// w = B^-1 * A_col.
  std::vector<double> ftran(std::size_t col) const {
    const std::size_t mm = m();
    std::vector<double> w(mm, 0.0);
    for (std::size_t k = 0; k < mm; ++k) {
      const double a = sf->a.at_unchecked(k, col);
      if (a == 0.0) continue;
      for (std::size_t r = 0; r < mm; ++r) w[r] += binv.at_unchecked(r, k) * a;
    }
    return w;
  }

  /// y' = c_b' B^-1.
  std::vector<double> btran(const std::vector<double>& cb) const {
    const std::size_t mm = m();
    std::vector<double> y(mm, 0.0);
    for (std::size_t r = 0; r < mm; ++r) {
      const double c = cb[r];
      if (c == 0.0) continue;
      for (std::size_t k = 0; k < mm; ++k) y[k] += c * binv.at_unchecked(r, k);
    }
    return y;
  }

  /// Elementary update of binv and xb after column `enter` (with tableau
  /// column w) replaces the basic variable of row `leave`.
  void update(std::size_t leave, std::size_t enter, const std::vector<double>& w) {
    const std::size_t mm = m();
    const double pivot = w[leave];
    const double inv = 1.0 / pivot;
    for (std::size_t k = 0; k < mm; ++k) binv.at_unchecked(leave, k) *= inv;
    xb[leave] *= inv;
    for (std::size_t r = 0; r < mm; ++r) {
      if (r == leave) continue;
      const double f = w[r];
      if (f == 0.0) continue;
      for (std::size_t k = 0; k < mm; ++k)
        binv.at_unchecked(r, k) -= f * binv.at_unchecked(leave, k);
      xb[r] -= f * xb[leave];
      if (std::fabs(xb[r]) < 1e-12) xb[r] = 0.0;
    }
    basis[leave] = enter;
  }
};

enum class PhaseOutcome { Optimal, Unbounded, IterationLimit, NumericalFailure };

PhaseOutcome run_phase(RevisedState& st, const std::vector<double>& cost,
                       const std::vector<bool>& allowed, const SolverOptions& opts,
                       std::uint64_t& iterations) {
  std::uint64_t degenerate_streak = 0;
  std::uint64_t since_refactor = 0;
  const std::size_t n = st.n();
  std::vector<bool> in_basis(n, false);
  for (std::size_t b : st.basis) in_basis[b] = true;

  for (std::uint64_t it = 0; it < opts.max_iterations; ++it) {
    if (since_refactor >= RevisedSimplexSolver::kRefactorInterval) {
      if (!st.refactorize()) return PhaseOutcome::NumericalFailure;
      since_refactor = 0;
    }
    // Price: y = c_B' B^-1, then reduced costs d_j = c_j - y' A_j.
    std::vector<double> cb(st.m());
    for (std::size_t r = 0; r < st.m(); ++r) cb[r] = cost[st.basis[r]];
    const std::vector<double> y = st.btran(cb);

    const bool bland = degenerate_streak >= opts.stall_threshold;
    std::size_t enter = n;
    double best = -opts.tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (!allowed[j] || in_basis[j]) continue;
      double d = cost[j];
      for (std::size_t r = 0; r < st.m(); ++r) {
        const double a = st.sf->a.at_unchecked(r, j);
        if (a != 0.0) d -= y[r] * a;
      }
      if (d < (bland ? -opts.tol : best)) {
        enter = j;
        if (bland) break;
        best = d;
      }
    }
    if (enter == n) return PhaseOutcome::Optimal;

    const std::vector<double> w = st.ftran(enter);
    std::size_t leave = st.m();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < st.m(); ++r) {
      if (w[r] <= opts.tol) continue;
      const double ratio = st.xb[r] / w[r];
      const bool better = ratio < best_ratio - opts.tol ||
                          (ratio < best_ratio + opts.tol && leave < st.m() &&
                           st.basis[r] < st.basis[leave]);
      if (better) {
        best_ratio = ratio;
        leave = r;
      }
    }
    if (leave == st.m()) return PhaseOutcome::Unbounded;

    degenerate_streak = best_ratio <= opts.tol ? degenerate_streak + 1 : 0;
    in_basis[st.basis[leave]] = false;
    in_basis[enter] = true;
    st.update(leave, enter, w);
    ++iterations;
    ++since_refactor;
  }
  return PhaseOutcome::IterationLimit;
}

}  // namespace

SolveResult RevisedSimplexSolver::solve(const Problem& p) const {
  SolveResult res;
  if (p.num_variables() == 0) {
    res.status = Status::Optimal;
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      const auto& c = p.constraint(i);
      const bool ok = (c.rel == Relation::LessEqual && 0.0 <= c.rhs + 1e-12) ||
                      (c.rel == Relation::GreaterEqual && 0.0 >= c.rhs - 1e-12) ||
                      (c.rel == Relation::Equal && std::fabs(c.rhs) <= 1e-12);
      if (!ok) res.status = Status::Infeasible;
    }
    return res;
  }

  StandardForm sf = build_standard_form(p);
  RevisedState st;
  st.sf = &sf;
  st.basis = sf.initial_basis;
  if (!st.refactorize()) {
    // The initial slack/artificial basis is an identity; failure here would
    // be a construction bug.
    res.status = Status::Infeasible;
    return res;
  }

  const std::size_t n = sf.cols();
  std::vector<bool> allow_all(n, true);

  if (sf.has_artificials()) {
    std::vector<double> phase1(n, 0.0);
    for (std::size_t j = 0; j < n; ++j)
      if (sf.is_artificial[j]) phase1[j] = 1.0;
    const PhaseOutcome out = run_phase(st, phase1, allow_all, opts_, res.iterations);
    if (out == PhaseOutcome::IterationLimit || out == PhaseOutcome::NumericalFailure) {
      res.status = Status::IterationLimit;
      return res;
    }
    double art_sum = 0.0;
    for (std::size_t r = 0; r < st.m(); ++r)
      if (sf.is_artificial[st.basis[r]]) art_sum += st.xb[r];
    if (art_sum > 1e-7) {
      res.status = Status::Infeasible;
      return res;
    }
  }

  std::vector<bool> allowed(n, true);
  for (std::size_t j = 0; j < n; ++j)
    if (sf.is_artificial[j]) allowed[j] = false;

  const PhaseOutcome out = run_phase(st, sf.c, allowed, opts_, res.iterations);
  switch (out) {
    case PhaseOutcome::IterationLimit:
    case PhaseOutcome::NumericalFailure:
      res.status = Status::IterationLimit;
      return res;
    case PhaseOutcome::Unbounded:
      res.status = Status::Unbounded;
      return res;
    case PhaseOutcome::Optimal:
      break;
  }

  std::vector<double> ysol(n, 0.0);
  for (std::size_t r = 0; r < st.m(); ++r) ysol[st.basis[r]] = st.xb[r];
  res.x = recover_solution(sf, ysol, p.num_variables());
  double obj = sf.c0;
  for (std::size_t j = 0; j < n; ++j) obj += sf.c[j] * ysol[j];
  res.objective = sf.obj_scale * obj;

  // Shadow prices: y = c_B' B^{-1}, mapped through row negation and sense.
  {
    std::vector<double> cb(st.m());
    for (std::size_t r = 0; r < st.m(); ++r) cb[r] = sf.c[st.basis[r]];
    const std::vector<double> y = st.btran(cb);
    res.duals.assign(p.num_constraints(), 0.0);
    for (std::size_t r = 0; r < st.m(); ++r) {
      const std::size_t origin = sf.row_origin[r];
      if (origin == static_cast<std::size_t>(-1)) continue;
      res.duals[origin] = sf.obj_scale * (sf.row_negated[r] ? -y[r] : y[r]);
    }
  }
  res.status = Status::Optimal;
  return res;
}

}  // namespace agora::lp
