#include "lp/revised.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "lp/standard_form.h"
#include "lp/tolerances.h"
#include "util/matrix.h"

namespace agora::lp {

namespace {

bool use_sparse(const SolverOptions& opts) { return opts.basis == BasisRep::SparseLu; }

/// Ratio-test pivots below this fraction of ||w||_inf are treated as
/// possible eta-file drift when the factorization is stale: refactorize and
/// recompute the column instead of committing the pivot (see run_phase).
constexpr double kEtaPivotStability = 1e-6;

/// x_B = B^-1 b with the denormal clamp refactorize() has always used,
/// writing into reused storage. Sparse path: copy b and run it through the
/// factored basis; dense path: vectorized dot per binv row.
void compute_xb(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts) {
  const std::size_t m = sf.rows();
  if (use_sparse(opts)) {
    W.xb.assign(sf.b.begin(), sf.b.end());
    W.slu.ftran(W.xb);
  } else {
    W.xb.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) W.xb[r] = vdot(W.binv.row(r), sf.b);
  }
  for (double& v : W.xb)
    if (std::fabs(v) < opts.tols.drop) v = 0.0;
}

/// Rebuild the factored basis (sparse LU, or the explicit dense inverse
/// under BasisRep::DenseInverse) and xb from the basis. Resets the
/// cross-solve pivot counter. When `stats` is given, counts the rebuild and
/// refreshes the cheap condition estimate plus the sparsity telemetry.
bool refactorize(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts,
                 SolveStats* stats = nullptr) {
  const std::size_t m = sf.rows();
  if (use_sparse(opts)) {
    if (!W.slu.factorize(sf, W.basis)) return false;
    compute_xb(sf, W, opts);
    W.pivots_since_factor = 0;
    if (stats) {
      ++stats->refactorizations;
      stats->condition_estimate = W.slu.condition_estimate();
      stats->basis_nnz = W.slu.basis_nnz();
      stats->lu_nnz = W.slu.lu_nnz();
    }
    return true;
  }
  W.bmat.assign(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t r = 0; r < m; ++r)
      W.bmat.at_unchecked(r, i) = sf.a.at_unchecked(r, W.basis[i]);
  LuFactorization lu(W.bmat);
  if (lu.singular()) return false;
  W.binv.assign(m, m);
  std::vector<double> e(m, 0.0);
  for (std::size_t col = 0; col < m; ++col) {
    e[col] = 1.0;
    const std::vector<double> x = lu.solve(e);
    e[col] = 0.0;
    for (std::size_t r = 0; r < m; ++r) W.binv.at_unchecked(r, col) = x[r];
  }
  compute_xb(sf, W, opts);
  W.pivots_since_factor = 0;
  if (stats) {
    ++stats->refactorizations;
    double bn = 0.0, in = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      double brow = 0.0, irow = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        brow += std::fabs(W.bmat.at_unchecked(r, k));
        irow += std::fabs(W.binv.at_unchecked(r, k));
      }
      bn = std::max(bn, brow);
      in = std::max(in, irow);
    }
    stats->condition_estimate = bn * in;
  }
  return true;
}

/// Relative residual ||b - B x_B||_inf / (1 + ||b||_inf). Leaves the raw
/// residual vector in W.resid so a refinement step can reuse it. Pure read
/// of the solve state: calling it never perturbs the iteration.
double xb_residual(const StandardForm& sf, SolveWorkspace& W) {
  const std::size_t m = sf.rows();
  W.resid.assign(m, 0.0);
  double bnorm = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    W.resid[r] = sf.b[r];
    bnorm = std::max(bnorm, std::fabs(sf.b[r]));
  }
  for (std::size_t i = 0; i < m; ++i) {
    const double x = W.xb[i];
    if (x == 0.0) continue;
    const std::size_t col = W.basis[i];
    for (std::size_t t = sf.col_start[col]; t < sf.col_start[col + 1]; ++t)
      W.resid[sf.col_row[t]] -= sf.col_val[t] * x;
  }
  double rnorm = 0.0;
  for (double v : W.resid) rnorm = std::max(rnorm, std::fabs(v));
  return rnorm / (1.0 + bnorm);
}

/// Numerical self-check on the basic solution: record the residual, rebuild
/// the inverse if it has drifted past tolerance, then apply one step of
/// iterative refinement (x_B += B^-1 (b - B x_B)) to squeeze out the
/// remaining error. On a healthy basis the residual is ~machine epsilon and
/// this is a cheap no-op-sized correction.
void refine_xb(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts,
               SolveStats& stats) {
  double rel = xb_residual(sf, W);
  stats.max_xb_residual = std::max(stats.max_xb_residual, rel);
  if (rel > opts.tols.refactor_residual) {
    ++stats.residual_refactorizations;
    if (!refactorize(sf, W, opts, &stats)) return;
    rel = xb_residual(sf, W);
  }
  if (rel == 0.0) return;
  ++stats.refinement_steps;
  const std::size_t m = sf.rows();
  if (use_sparse(opts)) {
    W.rho.assign(W.resid.begin(), W.resid.end());
    W.slu.ftran(W.rho);
    for (std::size_t r = 0; r < m; ++r) {
      W.xb[r] += W.rho[r];
      if (std::fabs(W.xb[r]) < opts.tols.drop) W.xb[r] = 0.0;
    }
    return;
  }
  for (std::size_t r = 0; r < m; ++r) {
    W.xb[r] += vdot(W.binv.row(r), W.resid);
    if (std::fabs(W.xb[r]) < opts.tols.drop) W.xb[r] = 0.0;
  }
}

/// Relative residual ||B w - a_col||_inf / (1 + ||a_col||_inf) of the
/// tableau column W.w claimed for entering column `col`. The sparse path
/// verifies every column with this before the ratio test: the rhs-based
/// xb_residual check is structurally blind on heavily degenerate problems
/// (when every nonzero of x_B sits on a slack column, b - B x_B is exactly
/// zero no matter how far the eta file has drifted), and an unverified
/// drifted column can pivot a dependent column into the basis. O(nnz of the
/// basis columns w touches). Clobbers W.resid.
double tableau_column_residual(const StandardForm& sf, SolveWorkspace& W,
                               std::size_t col) {
  const std::size_t m = sf.rows();
  W.resid.assign(m, 0.0);
  double anorm = 0.0;
  for (std::size_t t = sf.col_start[col]; t < sf.col_start[col + 1]; ++t) {
    W.resid[sf.col_row[t]] = sf.col_val[t];
    anorm = std::max(anorm, std::fabs(sf.col_val[t]));
  }
  double bmax = 0.0;
  double wmax = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double wi = W.w[i];
    if (wi == 0.0) continue;
    wmax = std::max(wmax, std::fabs(wi));
    const std::size_t bcol = W.basis[i];
    for (std::size_t t = sf.col_start[bcol]; t < sf.col_start[bcol + 1]; ++t) {
      W.resid[sf.col_row[t]] -= sf.col_val[t] * wi;
      bmax = std::max(bmax, std::fabs(sf.col_val[t]));
    }
  }
  double rnorm = 0.0;
  for (double v : W.resid) rnorm = std::max(rnorm, std::fabs(v));
  // Normwise backward error: a stable solve satisfies
  // ||a - B w|| <= O(eps) * (||a|| + ||B|| ||w||), so the denominator must
  // scale with the solution. Dividing by (1 + ||a||) alone condemns every
  // solve whose tableau column is large -- on the degenerate allocation LPs
  // ||w|| reaches 1e3 and a perfectly stable solve shows an "absolute"
  // residual near 1e-7, which is eps-level once normalized.
  return rnorm / (1.0 + anorm + bmax * wmax);
}

/// Normwise backward error of the pricing solve: ||c_B - B' y|| over
/// (1 + ||c_B|| + ||B|| ||y||), with W.y as produced by btran. A small value
/// means the simplex multipliers -- and hence every reduced cost priced with
/// them -- are as trustworthy as if the eta file were empty, so optimality
/// can be declared on stale factors without a refactorization.
double dual_residual(const StandardForm& sf, SolveWorkspace& W) {
  const std::size_t m = sf.rows();
  double cmax = 0.0;
  double ymax = 0.0;
  double bmax = 0.0;
  double rnorm = 0.0;
  for (std::size_t i = 0; i < m; ++i) ymax = std::max(ymax, std::fabs(W.y[i]));
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t bcol = W.basis[i];
    double s = 0.0;
    for (std::size_t t = sf.col_start[bcol]; t < sf.col_start[bcol + 1]; ++t) {
      s += sf.col_val[t] * W.y[sf.col_row[t]];
      bmax = std::max(bmax, std::fabs(sf.col_val[t]));
    }
    cmax = std::max(cmax, std::fabs(W.cb[i]));
    rnorm = std::max(rnorm, std::fabs(W.cb[i] - s));
  }
  return rnorm / (1.0 + cmax + bmax * ymax);
}

/// w = B^-1 A_col over the column's nonzeros (CSC). Sparse path: scatter the
/// column and sweep the LU factors + eta file (work scales with the factor
/// nonzeros). Dense path iterates binv by rows -- each row is contiguous, so
/// the gather over the column's row indices stays inside one cache line run
/// instead of striding the whole inverse.
void ftran(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts,
           std::size_t col) {
  const std::size_t m = sf.rows();
  const std::size_t start = sf.col_start[col];
  const std::size_t nnz = sf.col_start[col + 1] - start;
  const std::size_t* idx = sf.col_row.data() + start;
  const double* val = sf.col_val.data() + start;
  if (use_sparse(opts)) {
    // Scatter the CSC column and run it through the factored basis.
    W.w.assign(m, 0.0);
    for (std::size_t t = 0; t < nnz; ++t) W.w[idx[t]] = val[t];
    W.slu.ftran(W.w);
    return;
  }
  W.w.resize(m);
  for (std::size_t r = 0; r < m; ++r)
    W.w[r] = gather_dot(&W.binv.at_unchecked(r, 0), idx, val, nnz);
}

/// y' = c_B' B^-1 into W.y (sparse: transpose solve through the factored
/// basis; dense: vectorized axpy per contributing binv row).
void btran(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts) {
  const std::size_t m = sf.rows();
  if (use_sparse(opts)) {
    W.y.assign(W.cb.begin(), W.cb.end());
    W.slu.btran(W.y);
    return;
  }
  W.y.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double c = W.cb[r];
    if (c == 0.0) continue;
    vaxpy(c, W.binv.row(r), std::span<double>(W.y));
  }
}

/// Reduced cost d_j = c_j - y' A_j over the column's nonzeros.
double reduced_cost(const StandardForm& sf, const SolveWorkspace& W,
                    const std::vector<double>& cost, std::size_t j) {
  const std::size_t start = sf.col_start[j];
  return cost[j] - gather_dot(W.y.data(), sf.col_row.data() + start,
                              sf.col_val.data() + start, sf.col_start[j + 1] - start);
}

/// Basis update after column `enter` (with tableau column W.w) replaces the
/// basic variable of row `leave`. Sparse path: W.w *is* the product-form eta
/// vector, so absorbing the pivot is one sparse copy; dense path: the
/// historical elementary row update of binv. Both apply the same elementary
/// update to xb.
void update(SolveWorkspace& W, std::size_t leave, std::size_t enter,
            const SolverOptions& opts, SolveStats& stats) {
  const std::size_t m = W.basis.size();
  const double pivot = W.w[leave];
  const double inv = 1.0 / pivot;
  if (use_sparse(opts)) {
    W.slu.push_eta(leave, W.w, opts.tols.drop);
    stats.max_eta_count = std::max<std::uint64_t>(stats.max_eta_count, W.slu.eta_count());
  } else {
    for (std::size_t k = 0; k < m; ++k) W.binv.at_unchecked(leave, k) *= inv;
  }
  W.xb[leave] *= inv;
  for (std::size_t r = 0; r < m; ++r) {
    if (r == leave) continue;
    const double f = W.w[r];
    if (f == 0.0) continue;
    if (!use_sparse(opts)) vaxpy(-f, W.binv.row(leave), W.binv.row(r));
    W.xb[r] -= f * W.xb[leave];
    if (std::fabs(W.xb[r]) < opts.tols.drop) W.xb[r] = 0.0;
  }
  W.basis[leave] = enter;
  ++W.pivots_since_factor;
}

enum class PhaseOutcome { Optimal, Unbounded, IterationLimit, NumericalFailure };

/// One simplex phase. On Unbounded, `*unbounded_enter` receives the entering
/// column whose tableau column (still in W.w) had no blocking row -- the raw
/// material of the unboundedness ray.
PhaseOutcome run_phase(const StandardForm& sf, SolveWorkspace& W,
                       const std::vector<double>& cost, const SolverOptions& opts,
                       std::uint64_t& iterations, SolveStats& stats,
                       std::size_t* unbounded_enter = nullptr) {
  std::uint64_t degenerate_streak = 0;
  std::uint64_t since_refactor = 0;
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();
  W.in_basis.assign(n, false);
  for (std::size_t b : W.basis) W.in_basis[b] = true;

  // Partial pricing (sparse basis only): scan candidate columns in blocks
  // starting from a rotating cursor and enter the best reduced cost of the
  // first block that has one; optimality is only declared after a full sweep
  // of all n columns finds none, so the claim is as strong as full Dantzig
  // pricing. The dense path keeps block == n, i.e. the historical full scan.
  //
  // The block doubles after every degenerate pivot and snaps back to the
  // base size on real progress. On heavily degenerate problems a fixed
  // block is poison: every column it can see ties at ratio zero (the
  // allocation LPs are ring-symmetric, so whole blocks are interchangeable
  // junk), the cursor crawls, and the solver burns its stall budget before
  // ever seeing the distant column a full Dantzig scan would enter first.
  // Escalating to a full scan under degeneracy buys the dense path's
  // stall behavior while keeping block pricing where it pays.
  const std::size_t base_block =
      use_sparse(opts) ? std::max<std::size_t>(64, n / 8) : n;
  std::size_t price_block = base_block;
  std::size_t price_cursor = 0;

  for (std::uint64_t it = 0; it < opts.max_iterations; ++it) {
    const bool bland = degenerate_streak >= opts.stall_threshold;
    // Periodic refactorization. The sparse path keys on the workspace-global
    // pivot counter so the eta file stays bounded by kRefactorInterval even
    // across phase transitions and warm re-entries (the eta file persists
    // where the phase-local counter restarts); the dense path keeps the
    // historical phase-local cadence bit-for-bit.
    const std::uint64_t interval = RevisedSimplexSolver::kRefactorInterval;
    const std::uint64_t since =
        use_sparse(opts) ? W.pivots_since_factor : since_refactor;
    // Cost-based cadence on top of the pivot count: once the eta file holds
    // more nonzeros than the LU factors themselves, every ftran/btran pays
    // more to replay the update history than to apply the factorization, so
    // rebuilding is cheaper than carrying on. This is what keeps the warm
    // consult loop's solves eta-light. The pivot floor stops the trigger
    // from thrashing early in phase 1, where the slack basis factors to
    // lu_nnz ~ m and a couple of etas already outweigh it even though the
    // file is still trivially cheap to replay.
    const bool eta_heavy = use_sparse(opts) && W.pivots_since_factor >= 8 &&
                           W.slu.eta_nnz() > W.slu.lu_nnz();
    if (since >= interval || eta_heavy) {
      if (!refactorize(sf, W, opts, &stats)) return PhaseOutcome::NumericalFailure;
      since_refactor = 0;
    } else if (W.pivots_since_factor > 0) {
      // Residual-triggered refactorization: elementary updates accumulate
      // drift between the periodic rebuilds; catch it as soon as the basic
      // solution stops satisfying its own defining system.
      const double rel = xb_residual(sf, W);
      stats.max_xb_residual = std::max(stats.max_xb_residual, rel);
      if (rel > opts.tols.refactor_residual) {
        ++stats.residual_refactorizations;
        if (!refactorize(sf, W, opts, &stats)) return PhaseOutcome::NumericalFailure;
        since_refactor = 0;
      }
    }
    // Price: y = c_B' B^-1, then reduced costs d_j = c_j - y' A_j over each
    // candidate column's nonzeros.
    W.cb.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) W.cb[r] = cost[W.basis[r]];
    btran(sf, W, opts);
    // While Bland's rule is active the sparse path insists on trustworthy
    // pricing every iteration, not just at optimality: the anti-cycling
    // proof assumes exact pivot selection, and eta drift in y (a column
    // whose true reduced cost is zero showing d < -tol) breaks it. A
    // backward-stable y -- verified directly, one pass over the basis
    // columns -- carries the same error level as pricing off fresh factors,
    // so only a failed check forces the rebuild (refactorizing every Bland
    // iteration unconditionally costs more than the stall itself).
    if (use_sparse(opts) && bland && W.pivots_since_factor > 0 &&
        dual_residual(sf, W) > opts.tols.refactor_residual) {
      ++stats.residual_refactorizations;
      if (!refactorize(sf, W, opts, &stats)) return PhaseOutcome::NumericalFailure;
      since_refactor = 0;
      W.cb.assign(m, 0.0);
      for (std::size_t r = 0; r < m; ++r) W.cb[r] = cost[W.basis[r]];
      btran(sf, W, opts);
    }

    std::size_t enter = n;
    if (bland) {
      // Bland's rule: lowest-index improving column, scanned in full.
      for (std::size_t j = 0; j < n; ++j) {
        if (!W.allowed[j] || W.in_basis[j]) continue;
        if (reduced_cost(sf, W, cost, j) < -opts.tol) {
          enter = j;
          break;
        }
      }
    } else {
      double best = -opts.tol;
      std::size_t scanned = 0;
      while (scanned < n && enter == n) {
        const std::size_t limit = std::min(n, scanned + price_block);
        for (; scanned < limit; ++scanned) {
          std::size_t j = price_cursor + scanned;
          if (j >= n) j -= n;
          if (!W.allowed[j] || W.in_basis[j]) continue;
          const double d = reduced_cost(sf, W, cost, j);
          if (d < best) {
            best = d;
            enter = j;
          }
        }
      }
      if (enter != n) price_cursor = enter + 1 < n ? enter + 1 : 0;
    }
    if (enter == n) {
      // Sparse path: only declare optimality against trustworthy pricing --
      // y came through the eta file, and a drifted y can make an improving
      // column look priced-out. A backward-stable y (checked directly, one
      // pass over the basis columns) is as good as fresh factors; only when
      // the check fails is a rebuild + re-price needed. This keeps the warm
      // consult loop -- whose every solve ends here -- factorization-free.
      if (use_sparse(opts) && W.pivots_since_factor > 0 &&
          dual_residual(sf, W) > opts.tols.refactor_residual) {
        if (!refactorize(sf, W, opts, &stats)) return PhaseOutcome::NumericalFailure;
        since_refactor = 0;
        continue;
      }
      return PhaseOutcome::Optimal;
    }

    ftran(sf, W, opts, enter);
    // Sparse path: verify the tableau column before the ratio test sees it.
    // The xb-residual trigger cannot catch eta drift on heavily degenerate
    // problems (see tableau_column_residual), and a pivot committed from a
    // drifted column can wedge a dependent column into the basis -- after
    // which every refactorization fails. A failed check first gets one step
    // of iterative refinement (the verification already left a - B w in
    // W.resid, so the correction is a single extra solve) -- that also
    // absorbs Markowitz element growth, which fresh factors inherit -- and
    // only an unrefinable column forces a refactorization.
    if (use_sparse(opts)) {
      const auto refined_residual = [&](std::size_t col) {
        double rel = tableau_column_residual(sf, W, col);
        if (rel <= opts.tols.refactor_residual) return rel;
        W.rho.assign(W.resid.begin(), W.resid.end());
        W.slu.ftran(W.rho);
        for (std::size_t i = 0; i < m; ++i) W.w[i] += W.rho[i];
        return tableau_column_residual(sf, W, col);
      };
      double rel = refined_residual(enter);
      if (rel > opts.tols.refactor_residual && W.pivots_since_factor > 0) {
        ++stats.residual_refactorizations;
        if (!refactorize(sf, W, opts, &stats)) return PhaseOutcome::NumericalFailure;
        since_refactor = 0;
        ftran(sf, W, opts, enter);
        rel = refined_residual(enter);
      }
    }
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    double wmax = 0.0;
    for (std::size_t r = 0; r < m; ++r) wmax = std::max(wmax, std::fabs(W.w[r]));
    // Eta-file stability floor (sparse path, stale factors): an entry that is
    // noise-sized relative to the tableau column is as likely to be
    // accumulated eta drift as a real value -- pivoting on it can wedge a
    // dependent column into the basis (B becomes singular and the next
    // refactorization fails). With fresh factors the absolute tolerance
    // already screens drift (a true-zero entry resolves to ~eps * ||w||), so
    // the relative floor only applies while the eta file is non-empty -- and
    // never under Bland's rule, whose termination proof requires that every
    // truly-positive entry stay eligible to leave; there the verified (and
    // if needed refined) tableau column is the drift screen instead.
    const double pivot_floor =
        use_sparse(opts) && !bland && W.pivots_since_factor > 0
            ? std::max(opts.tol, kEtaPivotStability * wmax)
            : opts.tol;
    // Ratio-test tie-break: the sparse path prefers the largest pivot among
    // tied ratios (degenerate LPs tie dozens of rows at ratio 0, and a
    // noise-sized pivot there poisons the product-form eta file); under
    // Bland's rule the lowest basis index is kept -- its termination proof
    // needs it. The dense path keeps the historical index tie-break.
    const bool prefer_magnitude = use_sparse(opts) && !bland;
    for (std::size_t r = 0; r < m; ++r) {
      if (W.w[r] <= pivot_floor) continue;
      const double ratio = W.xb[r] / W.w[r];
      bool better = ratio < best_ratio - opts.tol;
      if (!better && ratio < best_ratio + opts.tol && leave < m) {
        better = prefer_magnitude ? W.w[r] > W.w[leave]
                                  : W.basis[r] < W.basis[leave];
      }
      if (better) {
        best_ratio = ratio;
        leave = r;
      }
    }
    if (leave == m) {
      // Unboundedness, like optimality, is only declared against fresh
      // factors: the relative floor may have screened out drift-sized
      // entries, and a drifted column can hide the true blocking row.
      if (use_sparse(opts) && W.pivots_since_factor > 0) {
        if (!refactorize(sf, W, opts, &stats)) return PhaseOutcome::NumericalFailure;
        since_refactor = 0;
        continue;
      }
      if (unbounded_enter) *unbounded_enter = enter;
      return PhaseOutcome::Unbounded;
    }

    if (best_ratio <= opts.tol) {
      ++degenerate_streak;
      price_block = std::min(n, price_block * 2);
    } else {
      degenerate_streak = 0;
      price_block = base_block;
    }
    if (bland) ++stats.bland_pivots;
    W.in_basis[W.basis[leave]] = false;
    W.in_basis[enter] = true;
    update(W, leave, enter, opts, stats);
    ++iterations;
    ++since_refactor;
  }
  return PhaseOutcome::IterationLimit;
}

/// Bounded dual-simplex repair: the warm basis is dual feasible for the
/// phase-2 cost (A and c are unchanged since it was optimal), so pivoting
/// negative basic variables out restores primal feasibility while keeping
/// optimality conditions. Returns false on any trouble (iteration bound,
/// no eligible entering column, numerical failure) -- the caller then falls
/// back to the cold two-phase start.
bool warm_repair(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts,
                 std::uint64_t& iterations, SolveStats& stats) {
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();
  const std::uint64_t limit = 2 * static_cast<std::uint64_t>(m) + 16;
  W.in_basis.assign(n, false);
  for (std::size_t b : W.basis) W.in_basis[b] = true;

  for (std::uint64_t it = 0; it < limit; ++it) {
    if (W.pivots_since_factor >= RevisedSimplexSolver::kRefactorInterval) {
      if (!refactorize(sf, W, opts, &stats)) return false;
    }
    // Most infeasible row leaves.
    std::size_t leave = m;
    double worst = -opts.tol;
    for (std::size_t r = 0; r < m; ++r) {
      if (W.xb[r] < worst) {
        worst = W.xb[r];
        leave = r;
      }
    }
    if (leave == m) return true;  // primal feasible again

    W.cb.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) W.cb[r] = sf.c[W.basis[r]];
    btran(sf, W, opts);

    // Dual ratio test over the leaving row alpha_j = (B^-1)_leave . A_j.
    // The sparse basis has no explicit inverse row; recover it as
    // rho = B^-T e_leave through the transpose solve.
    if (use_sparse(opts)) {
      W.rho.assign(m, 0.0);
      W.rho[leave] = 1.0;
      W.slu.btran(W.rho);
    }
    const std::span<const double> rho =
        use_sparse(opts) ? std::span<const double>(W.rho) : W.binv.row(leave);
    std::size_t enter = n;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (W.in_basis[j] || sf.is_artificial[j]) continue;
      double alpha = 0.0;
      for (std::size_t t = sf.col_start[j]; t < sf.col_start[j + 1]; ++t)
        alpha += rho[sf.col_row[t]] * sf.col_val[t];
      if (alpha >= -opts.tol) continue;
      double d = reduced_cost(sf, W, sf.c, j);
      if (d < 0.0) d = 0.0;  // tolerance dust; the basis was optimal
      const double ratio = d / (-alpha);
      if (ratio < best_ratio - opts.tol ||
          (ratio < best_ratio + opts.tol && enter < n && j < enter)) {
        best_ratio = ratio;
        enter = j;
      }
    }
    if (enter == n) return false;  // row cannot be repaired: let cold path decide

    ftran(sf, W, opts, enter);
    // Same column verification as run_phase: never commit a pivot from a
    // drifted product-form solve (see tableau_column_residual).
    if (use_sparse(opts) && W.pivots_since_factor > 0 &&
        tableau_column_residual(sf, W, enter) > opts.tols.refactor_residual) {
      ++stats.residual_refactorizations;
      if (!refactorize(sf, W, opts, &stats)) return false;
      ftran(sf, W, opts, enter);
    }
    if (std::fabs(W.w[leave]) <= opts.tol) return false;  // numerical mismatch
    W.in_basis[W.basis[leave]] = false;
    W.in_basis[enter] = true;
    update(W, leave, enter, opts, stats);
    ++iterations;
  }
  return false;
}

/// Re-seat the previous optimal basis against the rebuilt standard form.
/// Returns true when the workspace is primal feasible and phase 1 can be
/// skipped entirely.
bool try_warm_start(const StandardForm& sf, SolveWorkspace& W, const SolverOptions& opts,
                    std::uint64_t& iterations, SolveStats& stats) {
  const std::size_t m = sf.rows();
  if (W.warm_basis.size() != m) return false;
  W.basis = W.warm_basis;
  const bool factored = use_sparse(opts)
                            ? (W.slu.factorized() && W.slu.dim() == m)
                            : (W.binv.rows() == m && W.binv.cols() == m);
  if (!factored || W.pivots_since_factor >= RevisedSimplexSolver::kRefactorInterval) {
    if (!refactorize(sf, W, opts, &stats)) return false;
  } else {
    // The basis matrix is unchanged (same columns of the same A), so the
    // retained factorization is still exact: only x_B = B^-1 b must be
    // recomputed.
    compute_xb(sf, W, opts);
    // Self-heal a drifted (or corrupted) retained factorization: if the
    // basic solution does not satisfy B x_B = b to tolerance, the cached
    // factors are no longer trustworthy -- rebuild them from the basis
    // before pricing a single column against them.
    const double rel = xb_residual(sf, W);
    stats.max_xb_residual = std::max(stats.max_xb_residual, rel);
    if (rel > opts.tols.refactor_residual) {
      ++stats.residual_refactorizations;
      if (!refactorize(sf, W, opts, &stats)) return false;
    }
  }
  double bnorm = 0.0;
  for (std::size_t r = 0; r < m; ++r) bnorm = std::max(bnorm, std::fabs(sf.b[r]));
  double min_xb = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    // A basic artificial pushed positive means an original row is violated
    // at this basis; that needs phase 1, not repair.
    if (sf.is_artificial[W.basis[r]] && W.xb[r] > scaled(opts.tols.artificial, bnorm))
      return false;
    min_xb = std::min(min_xb, W.xb[r]);
  }
  if (min_xb >= -opts.tol) return true;
  return warm_repair(sf, W, opts, iterations, stats);
}

}  // namespace

SolveResult RevisedSimplexSolver::solve(const Problem& p) const { return solve(p, nullptr); }

SolveResult RevisedSimplexSolver::solve(const Problem& p, SolveWorkspace* ws) const {
  SolveResult res;
  if (p.num_variables() == 0) {
    res.status = Status::Optimal;
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      const auto& c = p.constraint(i);
      const double tol = scaled(opts_.tols.drop, std::fabs(c.rhs));
      const bool ok = (c.rel == Relation::LessEqual && 0.0 <= c.rhs + tol) ||
                      (c.rel == Relation::GreaterEqual && 0.0 >= c.rhs - tol) ||
                      (c.rel == Relation::Equal && std::fabs(c.rhs) <= tol);
      if (!ok) res.status = Status::Infeasible;
    }
    return res;
  }

  std::optional<SolveWorkspace> local;
  SolveWorkspace& W = ws ? *ws : local.emplace();
  // rhs-only motion (the trace loop / allocator patch path) skips the full
  // conversion: b is recomputed in O(m) from the cached offset dots and the
  // matrix, costs, and fingerprint stay valid -- so the warm start below
  // still engages.
  if (!repatch_standard_form_rhs(p, W.sf)) rebuild_standard_form(p, W.sf);
  const StandardForm& sf = W.sf;
  const std::size_t m = sf.rows();
  const std::size_t n = sf.cols();

  double bnorm = 0.0;
  for (std::size_t r = 0; r < m; ++r) bnorm = std::max(bnorm, std::fabs(sf.b[r]));

  // Warm start only when the previous optimum used the exact same (A, c):
  // the fingerprint keys on the matrix and objective, so bounds/rhs motion
  // (the trace-loop perturbation) warms up while anything else cold-starts.
  bool warmed = false;
  if (ws && W.warm && W.warm_rows == m && W.warm_cols == n &&
      W.warm_fingerprint == sf.fingerprint) {
    W.warm = false;  // re-established only if this solve reaches optimality
    warmed = try_warm_start(sf, W, opts_, res.iterations, res.stats);
  } else if (ws) {
    W.warm = false;
  }

  if (!warmed) {
    W.basis = sf.initial_basis;
    if (!refactorize(sf, W, opts_, &res.stats)) {
      // The initial slack/artificial basis is an identity; failure here would
      // be a construction bug.
      res.status = Status::Infeasible;
      return res;
    }

    if (sf.has_artificials()) {
      W.cost1.assign(n, 0.0);
      for (std::size_t j = 0; j < n; ++j)
        if (sf.is_artificial[j]) W.cost1[j] = 1.0;
      W.allowed.assign(n, true);
      const PhaseOutcome out = run_phase(sf, W, W.cost1, opts_, res.iterations, res.stats);
      if (out == PhaseOutcome::IterationLimit || out == PhaseOutcome::NumericalFailure) {
        res.status = Status::IterationLimit;
        return res;
      }
      double art_sum = 0.0;
      for (std::size_t r = 0; r < m; ++r)
        if (sf.is_artificial[W.basis[r]]) art_sum += W.xb[r];
      if (art_sum > scaled(opts_.tols.artificial, bnorm)) {
        // Phase 1 ended at a positive artificial sum: the problem is
        // infeasible, and the phase-1 duals y = c1_B' B^-1 are a Farkas
        // certificate -- every real column has non-negative phase-1 reduced
        // cost (y'A_j <= 0) while y'b equals the positive artificial sum.
        W.cb.assign(m, 0.0);
        for (std::size_t r = 0; r < m; ++r) W.cb[r] = W.cost1[W.basis[r]];
        btran(sf, W, opts_);
        res.farkas = W.y;
        res.status = Status::Infeasible;
        return res;
      }
    }
  }

  W.allowed.assign(n, true);
  for (std::size_t j = 0; j < n; ++j)
    if (sf.is_artificial[j]) W.allowed[j] = false;

  std::size_t unbounded_enter = n;
  const PhaseOutcome out =
      run_phase(sf, W, sf.c, opts_, res.iterations, res.stats, &unbounded_enter);
  switch (out) {
    case PhaseOutcome::IterationLimit:
    case PhaseOutcome::NumericalFailure:
      res.status = Status::IterationLimit;
      return res;
    case PhaseOutcome::Unbounded: {
      // Certificate: the entering column's tableau column w = B^-1 A_q had
      // no blocking row, so d with d_q = 1, d_{basis[r]} = -w_r is a
      // non-negative recession direction with A d = 0 and c'd < 0. The
      // current basic point (feasible by phase invariant) rides along as
      // the point the ray improves from.
      res.ray.assign(n, 0.0);
      res.ray[unbounded_enter] = 1.0;
      for (std::size_t r = 0; r < m; ++r) {
        double v = -W.w[r];
        if (std::fabs(v) < opts_.tols.drop) v = 0.0;
        res.ray[W.basis[r]] = v;
      }
      W.ysol.assign(n, 0.0);
      for (std::size_t r = 0; r < m; ++r) W.ysol[W.basis[r]] = W.xb[r];
      res.x = recover_solution(sf, W.ysol, p.num_variables());
      res.status = Status::Unbounded;
      return res;
    }
    case PhaseOutcome::Optimal:
      break;
  }

  // Numerical self-check + one refinement step before the answer leaves the
  // solver (see refine_xb).
  refine_xb(sf, W, opts_, res.stats);

  W.ysol.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) W.ysol[W.basis[r]] = W.xb[r];
  res.x = recover_solution(sf, W.ysol, p.num_variables());
  double obj = sf.c0;
  for (std::size_t j = 0; j < n; ++j) obj += sf.c[j] * W.ysol[j];
  res.objective = sf.obj_scale * obj;

  // Shadow prices: y = c_B' B^{-1}, mapped through row negation and sense.
  {
    W.cb.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) W.cb[r] = sf.c[W.basis[r]];
    btran(sf, W, opts_);
    res.duals.assign(p.num_constraints(), 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t origin = sf.row_origin[r];
      if (origin == static_cast<std::size_t>(-1)) continue;
      res.duals[origin] = sf.obj_scale * (sf.row_negated[r] ? -W.y[r] : W.y[r]);
    }
  }
  res.status = Status::Optimal;

  if (ws) {
    W.warm_basis = W.basis;
    W.warm_rows = m;
    W.warm_cols = n;
    W.warm_fingerprint = sf.fingerprint;
    W.warm = true;
  }
  return res;
}

}  // namespace agora::lp
