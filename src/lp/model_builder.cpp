#include "lp/model_builder.h"

#include <algorithm>

namespace agora::lp {

void LinExpr::add_term(Var v, double coeff) {
  AGORA_REQUIRE(v.valid(), "expression uses an invalid variable handle");
  terms_.emplace_back(v.index, coeff);
}

LinExpr& LinExpr::operator+=(const LinExpr& o) {
  terms_.insert(terms_.end(), o.terms_.begin(), o.terms_.end());
  constant_ += o.constant_;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& o) {
  for (const auto& [idx, c] : o.terms_) terms_.emplace_back(idx, -c);
  constant_ -= o.constant_;
  return *this;
}

LinExpr& LinExpr::operator*=(double s) {
  for (auto& [idx, c] : terms_) c *= s;
  constant_ *= s;
  return *this;
}

LinExpr sum(const std::vector<Var>& vars) {
  LinExpr e;
  for (Var v : vars) e.add_term(v, 1.0);
  return e;
}

Var ModelBuilder::add_var(const std::string& name, double lo, double hi) {
  return Var{problem_.add_variable(name, lo, hi, 0.0)};
}

std::vector<Var> ModelBuilder::add_vars(const std::string& prefix, std::size_t n, double lo,
                                        double hi) {
  std::vector<Var> vs;
  vs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    vs.push_back(add_var(prefix + "[" + std::to_string(i) + "]", lo, hi));
  return vs;
}

Var ModelBuilder::add_var(double lo, double hi) {
  return Var{problem_.add_variable(lo, hi, 0.0)};
}

std::vector<Var> ModelBuilder::add_vars(std::size_t n, double lo, double hi) {
  std::vector<Var> vs;
  vs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) vs.push_back(add_var(lo, hi));
  return vs;
}

std::size_t ModelBuilder::add(const RelExpr& rel, const std::string& name) {
  // rel.lhs holds (lhs - rhs); the constraint is lhs_terms REL -constant.
  std::vector<std::pair<std::size_t, double>> terms = rel.lhs.terms();
  return problem_.add_constraint_sparse(terms, rel.rel, -rel.lhs.constant(), name);
}

void ModelBuilder::set_objective(const LinExpr& e, Sense sense) {
  problem_.set_sense(sense);
  // Reset then accumulate (expressions may mention a variable twice).
  for (std::size_t j = 0; j < problem_.num_variables(); ++j) problem_.set_objective_coeff(j, 0.0);
  for (const auto& [idx, c] : e.terms())
    problem_.set_objective_coeff(idx, problem_.objective_coeff(idx) + c);
  obj_constant_ = e.constant();
}

void ModelBuilder::minimize(const LinExpr& e) { set_objective(e, Sense::Minimize); }
void ModelBuilder::maximize(const LinExpr& e) { set_objective(e, Sense::Maximize); }

}  // namespace agora::lp
