// revised.h -- revised primal simplex with an explicitly maintained basis
// inverse.
//
// Identical interface and semantics to SimplexSolver, but iterates on the
// m x m basis inverse instead of the full tableau: pricing touches original
// (sparse-ish) columns, so per-iteration work is O(m^2 + nnz) instead of
// O(m * n). For agora's allocation LPs this wins once the full paper
// formulation (n^2 + n + 1 variables) is used; the micro_lp bench quantifies
// the difference.
#pragma once

#include "lp/problem.h"
#include "lp/result.h"
#include "lp/workspace.h"

namespace agora::lp {

class RevisedSimplexSolver {
 public:
  explicit RevisedSimplexSolver(SolverOptions opts = {}) : opts_(opts) {}

  /// One-shot cold solve.
  SolveResult solve(const Problem& p) const;

  /// Amortized solve: `ws` (when non-null) supplies reusable scratch and the
  /// previous optimal basis as a warm start. Contract: between calls that
  /// share a workspace, only the problem's bounds and constraint rhs may
  /// change -- a changed matrix or objective is detected via the
  /// standard-form fingerprint and demoted to a cold start. Passing nullptr
  /// is exactly the historical cold solve.
  SolveResult solve(const Problem& p, SolveWorkspace* ws) const;

  /// Refactorize the basis inverse from scratch every this many pivots to
  /// bound numerical drift.
  static constexpr std::uint64_t kRefactorInterval = 64;

 private:
  SolverOptions opts_;
};

}  // namespace agora::lp
