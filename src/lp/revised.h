// revised.h -- revised primal simplex with an explicitly maintained basis
// inverse.
//
// Identical interface and semantics to SimplexSolver, but iterates on the
// m x m basis inverse instead of the full tableau: pricing touches original
// (sparse-ish) columns, so per-iteration work is O(m^2 + nnz) instead of
// O(m * n). For agora's allocation LPs this wins once the full paper
// formulation (n^2 + n + 1 variables) is used; the micro_lp bench quantifies
// the difference.
#pragma once

#include "lp/problem.h"
#include "lp/result.h"

namespace agora::lp {

class RevisedSimplexSolver {
 public:
  explicit RevisedSimplexSolver(SolverOptions opts = {}) : opts_(opts) {}

  SolveResult solve(const Problem& p) const;

  /// Refactorize the basis inverse from scratch every this many pivots to
  /// bound numerical drift.
  static constexpr std::uint64_t kRefactorInterval = 64;

 private:
  SolverOptions opts_;
};

}  // namespace agora::lp
