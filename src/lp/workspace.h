// workspace.h -- reusable solve context for the revised simplex.
//
// The trace-driven enforcement loop solves thousands of LPs whose *structure*
// never changes: same constraint matrix A and objective c, with only bounds
// and rhs moving between solves. A SolveWorkspace passed to
// RevisedSimplexSolver::solve amortizes every per-solve allocation (the
// standard-form conversion, the basis inverse, the pricing vectors) across
// calls, and carries the previous optimal basis as a warm start: when the
// matrix fingerprint matches, the solver re-uses the factorized basis
// inverse, recomputes x_B = B^-1 b for the perturbed rhs, and either goes
// straight to phase 2 (basis still primal feasible) or runs a bounded
// dual-simplex repair (basis stays dual feasible because A and c are
// unchanged). On any mismatch or repair failure it falls back to the cold
// path, whose behavior is bit-for-bit identical to a workspace-free solve.
//
// A workspace is single-threaded state: share one per (solver, model)
// pairing, never across concurrent solves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/sparse_lu.h"
#include "lp/standard_form.h"
#include "util/matrix.h"

namespace agora::lp {

struct SolveWorkspace {
  // --- Amortized scratch: contents are meaningless between solves, but the
  // heap blocks persist so steady-state solves allocate nothing. ----------
  StandardForm sf;                  ///< standard-form rebuild target.
  std::vector<std::size_t> basis;   ///< current basis, length m.
  SparseLu slu;                     ///< factored basis (BasisRep::SparseLu).
  Matrix binv;                      ///< m x m basis inverse (DenseInverse).
  Matrix bmat;                      ///< dense refactorization scratch.
  std::vector<double> rho;          ///< B^-T e_r scratch (dual ratio test).
  std::vector<double> xb;           ///< current basic solution B^-1 b.
  std::vector<double> cb;           ///< basic cost gather.
  std::vector<double> y;            ///< btran output (simplex multipliers).
  std::vector<double> w;            ///< ftran output (pivot column).
  std::vector<double> cost1;        ///< phase-1 cost vector.
  std::vector<double> resid;        ///< b - B x_B residual / refinement scratch.
  std::vector<double> ysol;         ///< standard-form solution gather.
  std::vector<bool> in_basis;       ///< per-column basis membership.
  std::vector<bool> allowed;        ///< per-column entry permission.

  // --- Warm-start state: persists across solves. When `warm` is true,
  // (warm_basis, binv) describe the optimum of the previous solve and
  // warm_fingerprint identifies the (A, c) it is valid for. -----------------
  bool warm = false;
  std::vector<std::size_t> warm_basis;
  std::size_t warm_rows = 0;
  std::size_t warm_cols = 0;
  double warm_fingerprint = 0.0;
  /// Elementary updates applied to binv since its last full refactorization,
  /// accumulated *across* solves so drift stays bounded on long warm runs.
  std::uint64_t pivots_since_factor = 0;

  /// Forget the warm-start state (the scratch stays allocated). Call when
  /// the model structure is about to change.
  void invalidate() { warm = false; }
};

}  // namespace agora::lp
