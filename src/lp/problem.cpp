#include "lp/problem.h"

#include <atomic>
#include <cmath>

namespace agora::lp {

std::uint64_t Problem::next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Problem::add_variable(const std::string& name, double lo, double hi, double cost) {
  AGORA_REQUIRE(!(lo > hi), "variable bounds inverted: " + name);
  AGORA_REQUIRE(!std::isnan(lo) && !std::isnan(hi) && !std::isnan(cost),
                "NaN in variable definition: " + name);
  lo_.push_back(lo);
  hi_.push_back(hi);
  cost_.push_back(cost);
  var_names_.push_back(name);  // empty stays empty; variable_name() synthesizes
  // Pad existing constraints so their coefficient vectors stay dense.
  for (auto& c : constraints_) c.coeffs.resize(lo_.size(), 0.0);
  ++structural_rev_;
  return lo_.size() - 1;
}

std::size_t Problem::add_constraint(std::vector<double> coeffs, Relation rel, double rhs,
                                    const std::string& name) {
  AGORA_REQUIRE(coeffs.size() <= num_variables(), "constraint has more coefficients than variables");
  AGORA_REQUIRE(!std::isnan(rhs), "NaN rhs in constraint " + name);
  for (double c : coeffs) AGORA_REQUIRE(!std::isnan(c), "NaN coefficient in constraint " + name);
  coeffs.resize(num_variables(), 0.0);
  constraints_.push_back(Constraint{std::move(coeffs), rel, rhs,
                                    name.empty() ? "c" + std::to_string(constraints_.size()) : name});
  ++structural_rev_;
  return constraints_.size() - 1;
}

std::size_t Problem::add_constraint_sparse(
    const std::vector<std::pair<std::size_t, double>>& terms, Relation rel, double rhs,
    const std::string& name) {
  std::vector<double> coeffs(num_variables(), 0.0);
  for (const auto& [idx, v] : terms) {
    AGORA_REQUIRE(idx < num_variables(), "sparse term references unknown variable");
    coeffs[idx] += v;
  }
  return add_constraint(std::move(coeffs), rel, rhs, name);
}

void Problem::set_objective_coeff(std::size_t var, double cost) {
  AGORA_REQUIRE(var < num_variables(), "objective coefficient for unknown variable");
  cost_[var] = cost;
  ++structural_rev_;
}

double Problem::objective_coeff(std::size_t var) const {
  AGORA_REQUIRE(var < num_variables(), "objective coefficient for unknown variable");
  return cost_[var];
}

std::string Problem::variable_name(std::size_t j) const {
  const std::string& n = var_names_.at(j);
  return n.empty() ? "x" + std::to_string(j) : n;
}

void Problem::set_rhs(std::size_t i, double rhs) {
  AGORA_REQUIRE(i < constraints_.size(), "rhs for unknown constraint");
  AGORA_REQUIRE(!std::isnan(rhs), "NaN rhs in constraint " + constraints_[i].name);
  constraints_[i].rhs = rhs;
}

void Problem::set_bounds(std::size_t var, double lo, double hi) {
  AGORA_REQUIRE(var < num_variables(), "bounds for unknown variable");
  AGORA_REQUIRE(!(lo > hi), "variable bounds inverted");
  // A value-only move of a finite upper bound (lower bound untouched) only
  // changes the rhs of the variable's bound row in standard form, so it
  // does not invalidate cached structure (see repatch_standard_form_rhs).
  // Anything that can change the variable mapping -- a lower-bound move
  // (shift offsets feed A's transformed rhs and c0) or a bound changing
  // finiteness -- is a structural edit.
  const bool rhs_only =
      lo == lo_[var] && (hi == hi_[var] || (std::isfinite(lo) &&
                                            std::isfinite(hi) &&
                                            std::isfinite(hi_[var])));
  lo_[var] = lo;
  hi_[var] = hi;
  if (!rhs_only) ++structural_rev_;
}

double Problem::objective_value(const std::vector<double>& x) const {
  AGORA_REQUIRE(x.size() == num_variables(), "point has wrong dimension");
  double v = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) v += cost_[j] * x[j];
  return v;
}

double Problem::max_violation(const std::vector<double>& x) const {
  AGORA_REQUIRE(x.size() == num_variables(), "point has wrong dimension");
  double viol = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < lo_[j]) viol = std::max(viol, lo_[j] - x[j]);
    if (x[j] > hi_[j]) viol = std::max(viol, x[j] - hi_[j]);
  }
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) lhs += c.coeffs[j] * x[j];
    switch (c.rel) {
      case Relation::LessEqual: viol = std::max(viol, lhs - c.rhs); break;
      case Relation::GreaterEqual: viol = std::max(viol, c.rhs - lhs); break;
      case Relation::Equal: viol = std::max(viol, std::fabs(lhs - c.rhs)); break;
    }
  }
  return viol;
}

void Problem::validate() const {
  for (std::size_t j = 0; j < num_variables(); ++j) {
    AGORA_REQUIRE(!(lo_[j] > hi_[j]), "inverted bounds on " + variable_name(j));
    AGORA_REQUIRE(std::isfinite(cost_[j]),
                  "non-finite objective coefficient on " + variable_name(j));
  }
  for (const auto& c : constraints_) {
    AGORA_REQUIRE(std::isfinite(c.rhs), "non-finite rhs in " + c.name);
    AGORA_REQUIRE(c.coeffs.size() == num_variables(), "stale constraint width in " + c.name);
    for (double v : c.coeffs) AGORA_REQUIRE(std::isfinite(v), "non-finite coefficient in " + c.name);
  }
}

}  // namespace agora::lp
