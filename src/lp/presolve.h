// presolve.h -- LP presolve: removes trivially determined structure before
// the simplex sees the problem, and maps full solutions (primal AND dual)
// back to the original problem so lp::Verifier can certify the mapped
// answer against the problem the caller actually posed.
//
// Reductions applied (in a loop until a fixed point):
//   1. fixed variables (lo == hi) are substituted out,
//   2. empty constraint rows are checked for consistency and dropped,
//   3. singleton rows (one nonzero coefficient) are folded into bounds --
//      this is the bound-tightening pass: general activity-based tightening
//      is deliberately not attempted because folded singletons are the only
//      tightening whose dual can be reconstructed exactly in postsolve,
//   4. empty columns (no surviving row touches the variable) are fixed at
//      the bound the objective prefers,
//   5. dual fixing: a column whose objective never rewards growth and whose
//      every coefficient relaxes its rows when the variable shrinks is fixed
//      at its lower bound (mirror case at the upper bound),
//   6. rows are scaled by their largest |coefficient| (numerical hygiene).
//
// Postsolve restores eliminated variables, rescales surviving duals, and
// reconstructs the duals of folded singleton rows (in reverse elimination
// order, absorbing the variable's remaining reduced cost when the row is
// binding), so the mapped result satisfies the KKT conditions of the
// original problem whenever the reduced result satisfied the reduced one's.
//
// The paper notes that "the complexity of the linear programming model can
// be reduced by exploiting additional structure in commonly encountered
// agreement graphs"; presolve is the generic half of that observation (the
// hierarchical multi-grid allocator in src/alloc is the structured half).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "lp/problem.h"
#include "lp/result.h"
#include "lp/tolerances.h"

namespace agora::lp {

struct PresolveOutcome {
  /// Set when presolve alone decided the problem (infeasible, or every
  /// variable fixed). Decided results carry no Farkas certificate --
  /// lp::solve re-solves the original directly when a caller needs one.
  std::optional<SolveResult> decided;
  /// The reduced problem (valid when !decided).
  Problem reduced;
  /// reduced variable index -> original variable index.
  std::vector<std::size_t> var_origin;
  /// reduced row index -> original row index.
  std::vector<std::size_t> row_origin;
  /// Divisor applied to each reduced row (reduction 6); postsolve divides
  /// the corresponding dual by the same factor.
  std::vector<double> row_scale;
  /// Values of variables eliminated during presolve (by original index).
  std::vector<std::pair<std::size_t, double>> fixed_values;
  /// Folded singleton rows in elimination order; postsolve reconstructs
  /// their duals in reverse.
  struct FoldedRow {
    std::size_t row;  ///< original row index.
    std::size_t var;  ///< original index of the row's single variable.
  };
  std::vector<FoldedRow> folded_rows;
  /// Original problem dimensions.
  std::size_t original_vars = 0;
  std::size_t original_rows = 0;

  /// Map a solution of `reduced` back to the original variable space.
  std::vector<double> postsolve(const std::vector<double>& reduced_x) const;

  /// Map a full reduced-problem result (primal, duals, objective) back to
  /// `original`. Duals are reconstructed only when the reduced result
  /// carried them; a dual-free result stays dual-free (primal-only
  /// certificate).
  void postsolve(const Problem& original, SolveResult& r,
                 const Tolerances& tols = {}) const;
};

PresolveOutcome presolve(const Problem& p, const Tolerances& tols = {});

}  // namespace agora::lp
