// presolve.h -- lightweight LP presolve: removes trivially determined
// structure before the simplex sees the problem, and maps solutions back.
//
// Reductions applied (in a loop until a fixed point):
//   1. fixed variables (lo == hi) are substituted out,
//   2. empty constraint rows are checked for consistency and dropped,
//   3. singleton rows (one nonzero coefficient) are folded into bounds,
//   4. rows are scaled by their largest |coefficient| (numerical hygiene).
//
// The paper notes that "the complexity of the linear programming model can
// be reduced by exploiting additional structure in commonly encountered
// agreement graphs"; presolve is the generic half of that observation (the
// hierarchical multi-grid allocator in src/alloc is the structured half).
#pragma once

#include <optional>
#include <vector>

#include "lp/problem.h"
#include "lp/result.h"
#include "lp/tolerances.h"

namespace agora::lp {

struct PresolveOutcome {
  /// Set when presolve alone decided the problem (infeasible, or every
  /// variable fixed).
  std::optional<SolveResult> decided;
  /// The reduced problem (valid when !decided).
  Problem reduced;
  /// reduced variable index -> original variable index.
  std::vector<std::size_t> var_origin;
  /// Values of variables eliminated during presolve (by original index).
  std::vector<std::pair<std::size_t, double>> fixed_values;
  /// Original variable count.
  std::size_t original_vars = 0;

  /// Map a solution of `reduced` back to the original variable space.
  std::vector<double> postsolve(const std::vector<double>& reduced_x) const;
};

PresolveOutcome presolve(const Problem& p, const Tolerances& tols = {});

/// Convenience: presolve, solve the reduced problem with the given solver
/// callable (Problem -> SolveResult), postsolve the answer.
template <typename Solver>
SolveResult solve_with_presolve(const Problem& p, const Solver& solver,
                                const Tolerances& tols = {}) {
  PresolveOutcome out = presolve(p, tols);
  if (out.decided) return *out.decided;
  SolveResult r = solver(out.reduced);
  if (r.status == Status::Optimal) {
    r.x = out.postsolve(r.x);
    r.objective = p.objective_value(r.x);
  }
  return r;
}

}  // namespace agora::lp
