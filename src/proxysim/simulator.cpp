#include "proxysim/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <queue>

#include "proxysim/scheduler_bridge.h"
#include "util/error.h"

namespace agora::proxysim {

namespace {

struct Job {
  double arrival = 0.0;  ///< original arrival time (for wait attribution)
  double demand = 0.0;   ///< unit-power service seconds (incl. redirect cost)
  std::uint32_t origin = 0;
  bool redirected = false;
};

struct ProxyState {
  std::deque<Job> queue;
  double queued_demand = 0.0;  ///< sum of demands in queue
  bool busy = false;
  double busy_until = 0.0;
  double last_consult = -std::numeric_limits<double>::infinity();

  void push(Job j) {
    queued_demand += j.demand;
    queue.push_back(j);
  }
  Job pop_front() {
    Job j = queue.front();
    queue.pop_front();
    queued_demand -= j.demand;
    return j;
  }
  Job pop_back() {
    Job j = queue.back();
    queue.pop_back();
    queued_demand -= j.demand;
    return j;
  }
};

enum class EventKind : std::uint8_t { Completion = 0, Arrival = 1, Decision = 2 };

struct Event {
  double time;
  EventKind kind;
  std::uint32_t proxy;
  std::uint64_t seq;  ///< tie-break for determinism
  Job job;            ///< valid for Arrival
  std::vector<double> absorb;  ///< valid for Decision: per-proxy budgets

  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    if (kind != o.kind) return kind > o.kind;  // completions first
    return seq > o.seq;
  }
};

}  // namespace

Simulator::Simulator(SimConfig cfg) : cfg_(std::move(cfg)) {
  AGORA_REQUIRE(cfg_.num_proxies > 0, "need at least one proxy");
  AGORA_REQUIRE(cfg_.horizon > 0.0 && cfg_.slot_width > 0.0, "bad horizon/slot width");
  AGORA_REQUIRE(cfg_.power.empty() || cfg_.power.size() == cfg_.num_proxies,
                "power vector must match proxy count");
  AGORA_REQUIRE(cfg_.redirect_cost >= 0.0, "redirect cost must be non-negative");
}

SimMetrics Simulator::run(const std::vector<std::vector<trace::TraceRequest>>& traces) {
  AGORA_REQUIRE(traces.size() == cfg_.num_proxies, "one trace per proxy required");
  const std::size_t n = cfg_.num_proxies;

  SimMetrics metrics(cfg_.horizon, cfg_.slot_width, n);

  // Run-local trace ring: the simulator's events (and, via the repointed
  // allocator sink, the LP solve chain's events) land in one per-run stream
  // in virtual-time order, isolated from other runs and deterministic under
  // identical seeds. Registry metrics still go wherever cfg_.sink points.
  obs::EventRing ring(cfg_.event_ring_capacity);
  obs::Sink sink = cfg_.sink;
  sink.events = &ring;
  cfg_.alloc_opts.sink = sink;

  SchedulerBridge scheduler(cfg_);
  std::vector<ProxyState> proxies(n);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;

  // Seed arrival events, the per-slot request counts, and each proxy's
  // known demand curve (cumulative arriving work over time, used to report
  // honest spare capacity to the scheduler).
  const std::size_t num_slots = metrics.requests_by_slot.size();
  std::vector<std::vector<double>> work_prefix(n, std::vector<double>(num_slots + 1, 0.0));
  for (std::size_t p = 0; p < n; ++p) {
    double prev = -1.0;
    for (const auto& r : traces[p]) {
      AGORA_REQUIRE(r.arrival >= prev, "trace must be sorted by arrival");
      prev = r.arrival;
      Job j;
      j.arrival = r.arrival;
      j.demand = cfg_.cost.demand(r.response_bytes);
      j.origin = static_cast<std::uint32_t>(p);
      events.push(Event{r.arrival, EventKind::Arrival, static_cast<std::uint32_t>(p), seq++, j, {}});
      auto slot = static_cast<std::size_t>(r.arrival / cfg_.slot_width);
      if (slot >= num_slots) slot = num_slots - 1;
      ++metrics.requests_by_slot[slot];
      ++metrics.total_requests;
      work_prefix[p][slot + 1] += j.demand;
    }
    for (std::size_t s = 0; s < num_slots; ++s) work_prefix[p][s + 1] += work_prefix[p][s];
  }

  // Expected demand arriving at proxy p during [t0, t1), interpolating the
  // per-slot demand curve (zero past the horizon -- the trace is known).
  const auto expected_work = [&](std::size_t p, double t0, double t1) {
    const auto cum = [&](double t) {
      if (t <= 0.0) return 0.0;
      if (t >= cfg_.horizon) return work_prefix[p][num_slots];
      const double pos = t / cfg_.slot_width;
      const auto s = std::min(static_cast<std::size_t>(pos), num_slots - 1);
      const double frac = pos - static_cast<double>(s);
      return work_prefix[p][s] + frac * (work_prefix[p][s + 1] - work_prefix[p][s]);
    };
    return std::max(0.0, cum(t1) - cum(t0));
  };

  const auto record_wait = [&](const Job& j, double start_time) {
    const double wait = start_time - j.arrival;
    metrics.wait_by_slot.add(j.arrival, wait);
    metrics.wait_by_slot_per_proxy[j.origin].add(j.arrival, wait);
    metrics.wait_overall.add(wait);
    metrics.per_proxy_wait[j.origin].add(wait);
    metrics.wait_histogram.add(wait);
  };

  const auto slot_of = [&](double t) {
    auto s = static_cast<std::size_t>(std::max(t, 0.0) / cfg_.slot_width);
    return std::min(s, metrics.requests_by_slot.size() - 1);
  };

  const auto try_start = [&](std::size_t p, double now) {
    ProxyState& st = proxies[p];
    if (st.busy || st.queue.empty()) return;
    const Job j = st.pop_front();
    record_wait(j, now);
    sink.event(now, obs::EventKind::RequestAdmitted, static_cast<std::uint32_t>(p), j.origin,
               now - j.arrival, j.demand);
    st.busy = true;
    st.busy_until = now + j.demand / cfg_.proxy_power(p);
    events.push(Event{st.busy_until, EventKind::Completion, static_cast<std::uint32_t>(p),
                      seq++, Job{}, {}});
  };

  // Spare capacity over the scheduling epoch, in unit-power demand seconds:
  // the window's processing budget minus the current backlog minus the
  // proxy's own expected arrivals within the window.
  const auto spare_capacity = [&](double now) {
    std::vector<double> spare(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      const double busy_left = proxies[k].busy ? std::max(0.0, proxies[k].busy_until - now) : 0.0;
      double committed = proxies[k].queued_demand + busy_left * cfg_.proxy_power(k);
      if (cfg_.spare_includes_forecast)
        committed += expected_work(k, now, now + cfg_.planning_window);
      spare[k] = std::max(0.0, cfg_.planning_window * cfg_.proxy_power(k) - committed);
    }
    return spare;
  };

  std::function<void(std::size_t, const std::vector<double>&, double)> apply_decision;

  const auto maybe_consult = [&](std::size_t p, double now) {
    if (scheduler.kind() == SchedulerKind::None) return;
    ProxyState& st = proxies[p];
    const double power = cfg_.proxy_power(p);
    if (st.queued_demand / power <= cfg_.queue_threshold) return;
    if (now - st.last_consult < cfg_.consult_cooldown) return;
    st.last_consult = now;
    ++metrics.scheduler_consults;
    ++metrics.consults_by_slot[slot_of(now)];

    const double keep = cfg_.keep_local_fraction * cfg_.queue_threshold * power;
    const double overflow = st.queued_demand - keep;
    if (overflow <= 0.0) return;
    sink.event(now, obs::EventKind::ConsultStarted, static_cast<std::uint32_t>(p), 0, overflow);

    // The origin's reported spare must exclude the overflow it is trying to
    // shed (but keep its expected arrivals), otherwise the LP sees the
    // origin as saturated and dumps the whole overflow remotely instead of
    // balancing local vs remote load.
    std::vector<double> spare = spare_capacity(now);
    const double busy_left = st.busy ? std::max(0.0, st.busy_until - now) : 0.0;
    spare[p] = std::max(
        0.0, cfg_.planning_window * power - keep - busy_left * power -
                 (cfg_.spare_includes_forecast
                      ? expected_work(p, now, now + cfg_.planning_window)
                      : 0.0));

    RedirectDecision dec = scheduler.plan(p, overflow, spare);
    metrics.lp_iterations += dec.lp_iterations;
    metrics.solver_fallbacks += dec.solver_fallbacks;
    if (dec.certified) ++metrics.certified_consults;
    if (dec.degraded_local) {
      ++metrics.degraded_consults;
      ++metrics.degraded_by_slot[slot_of(now)];
      sink.event(now, obs::EventKind::ConsultDegraded, static_cast<std::uint32_t>(p), 0,
                 overflow);
    }

    if (cfg_.decision_latency > 0.0) {
      // Centralized scheduling has a round trip: the decision was computed
      // against now-current state but takes effect only after the latency.
      Event ev{now + cfg_.decision_latency, EventKind::Decision,
               static_cast<std::uint32_t>(p), seq++, Job{}, std::move(dec.absorb)};
      events.push(std::move(ev));
      return;
    }
    apply_decision(p, dec.absorb, now);
  };

  // Defined below as a std::function so maybe_consult (above) and the event
  // loop can both call it.
  apply_decision = [&](std::size_t p, const std::vector<double>& absorb, double now) {
    ProxyState& st = proxies[p];
    const double power = cfg_.proxy_power(p);

    // Move jobs from the back of the queue (the ones that would wait the
    // longest) to the absorbing proxies, never re-redirecting a job. Each
    // donor's budget is additionally capped by the *wait benefit*: moving
    // more than equalizes the two backlogs (net of the redirection cost)
    // makes the moved request worse off -- the paper's justification for
    // redirection is precisely that "without redirection this request would
    // suffer much longer delay". Without this cap a saturated system churns
    // work between equally busy proxies, paying the overhead every time.
    for (std::size_t k = 0; k < n; ++k) {
      if (k == p) continue;
      double budget = absorb[k];
      if (budget <= 1e-12) continue;
      if (scheduler.kind() == SchedulerKind::Lp && cfg_.wait_benefit_cap) {
        // Only the centralized scheme knows donor backlogs; the endpoint
        // baseline redirects blindly (that asymmetry is Figure 13's point).
        const double donor_power = cfg_.proxy_power(k);
        const double donor_busy_left =
            proxies[k].busy ? std::max(0.0, proxies[k].busy_until - now) : 0.0;
        const double wait_p = st.queued_demand / power;
        const double wait_k = proxies[k].queued_demand / donor_power + donor_busy_left;
        const double equalize = 0.5 * (wait_p - wait_k - cfg_.redirect_cost);
        budget = std::min(budget, std::max(0.0, equalize * donor_power));
        if (budget <= 1e-12) continue;
      }
      // Scan from the back for movable jobs.
      std::deque<Job> skipped;
      while (budget > 1e-12 && !st.queue.empty()) {
        Job j = st.pop_back();
        // The redirection overhead is work the donor must perform too, so
        // it counts against the granted budget -- otherwise donors receive
        // (1 + cost/mean_demand) times what the scheduler allotted and the
        // whole system spirals into overload.
        const double landed_demand = j.demand + cfg_.redirect_cost;
        // The LP scheme never needs to move a request twice (it placed it
        // where capacity provably existed); the blind endpoint scheme has
        // no such knowledge, so a misdirected request may be redistributed
        // again -- and keeps paying the cost each hop.
        const bool movable =
            !j.redirected || scheduler.kind() == SchedulerKind::Endpoint;
        if (!movable || landed_demand > budget + 1e-9) {
          skipped.push_front(j);
          continue;
        }
        budget -= landed_demand;
        j.redirected = true;
        j.demand += cfg_.redirect_cost;
        ++metrics.redirected_requests;
        metrics.redirected_demand += j.demand;
        sink.event(now, obs::EventKind::RequestRedirected, static_cast<std::uint32_t>(p),
                   static_cast<std::uint32_t>(k), j.demand, cfg_.redirect_cost);
        auto slot = static_cast<std::size_t>(
            std::min(j.arrival, cfg_.horizon - 1e-9) / cfg_.slot_width);
        if (slot >= metrics.redirected_by_slot.size())
          slot = metrics.redirected_by_slot.size() - 1;
        ++metrics.redirected_by_slot[slot];
        proxies[k].push(j);
        try_start(k, now);
      }
      for (Job& j : skipped) st.push(j);
    }
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    switch (ev.kind) {
      case EventKind::Arrival: {
        proxies[ev.proxy].push(ev.job);
        try_start(ev.proxy, ev.time);
        maybe_consult(ev.proxy, ev.time);
        break;
      }
      case EventKind::Completion: {
        proxies[ev.proxy].busy = false;
        try_start(ev.proxy, ev.time);
        // Re-check the backlog: without this, a proxy whose arrivals have
        // stopped would never consult again no matter how long its queue is.
        maybe_consult(ev.proxy, ev.time);
        break;
      }
      case EventKind::Decision: {
        apply_decision(ev.proxy, ev.absorb, ev.time);
        break;
      }
    }
  }

  for (const auto& st : proxies)
    AGORA_INVARIANT(st.queue.empty() && !st.busy, "simulation ended with unserved work");

  // Snapshot the run's trace and mirror the headline totals into the
  // registry (SimMetrics remains the authoritative per-run record; the
  // registry view is what --metrics-out and long-lived processes export).
  metrics.events = ring.snapshot();
  metrics.events_overwritten = ring.overwritten();
  if constexpr (obs::kEnabled) {
    sink.counter("sim.requests.total").inc(metrics.total_requests);
    sink.counter("sim.requests.redirected").inc(metrics.redirected_requests);
    sink.counter("sim.consults").inc(metrics.scheduler_consults);
    sink.counter("sim.consults.certified").inc(metrics.certified_consults);
    sink.counter("sim.consults.degraded").inc(metrics.degraded_consults);
    sink.counter("sim.lp_iterations").inc(metrics.lp_iterations);
    sink.counter("sim.solver_fallbacks").inc(metrics.solver_fallbacks);
    sink.counter("sim.events.overwritten").inc(metrics.events_overwritten);
    sink.gauge("sim.wait.mean_seconds").set(metrics.mean_wait());
    sink.gauge("sim.wait.peak_slot_seconds").set(metrics.peak_slot_wait());
    sink.gauge("sim.redirected_fraction").set(metrics.redirected_fraction());
  }
  return metrics;
}

}  // namespace agora::proxysim
