#include "proxysim/scheduler_bridge.h"

#include <algorithm>

#include "engine/engine.h"
#include "obs/timer.h"

namespace agora::proxysim {

SchedulerBridge::SchedulerBridge(const SimConfig& cfg)
    : kind_(cfg.scheduler), n_(cfg.num_proxies), agreements_(cfg.agreements),
      retained_(cfg.num_proxies, 1.0) {
  // Static per-epoch processing budget per proxy: the only capacity view
  // the *endpoint* scheme is allowed to use (it has no availability
  // information -- that is the point of the Figure 13 comparison).
  static_budget_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k)
    static_budget_[k] = cfg.planning_window * cfg.proxy_power(k);
  AGORA_REQUIRE(kind_ == SchedulerKind::None ||
                    (agreements_.rows() == n_ && agreements_.cols() == n_),
                "agreement matrix must be num_proxies x num_proxies");
  obs_plan_seconds_ = &cfg.alloc_opts.sink.histogram("proxysim.bridge.plan.seconds");
  obs_plans_ = &cfg.alloc_opts.sink.counter("proxysim.bridge.plans");
  obs_masked_donors_ = &cfg.alloc_opts.sink.counter("proxysim.bridge.masked_donors");
  if (kind_ == SchedulerKind::Lp) {
    agree::AgreementSystem sys(n_);
    sys.relative = agreements_;
    if (cfg.scheduler_threads >= 1) {
      engine::EngineOptions eng;
      eng.threads = cfg.scheduler_threads;
      eng.plan_cache = cfg.engine_plan_cache;
      eng.alloc = cfg.alloc_opts;
      eng.sink = cfg.alloc_opts.sink;
      allocator_ =
          std::make_unique<engine::EnforcementEngine>(std::move(sys), std::move(eng));
    } else {
      allocator_ = std::make_unique<alloc::Allocator>(std::move(sys), cfg.alloc_opts);
    }
  } else if (kind_ == SchedulerKind::Endpoint) {
    endpoint_sys_ = agree::AgreementSystem(n_);
    endpoint_sys_.relative = agreements_;
  }
}

RedirectDecision SchedulerBridge::plan(std::size_t origin, double overflow,
                                       const std::vector<double>& spare) {
  return plan(origin, overflow, spare, {});
}

RedirectDecision SchedulerBridge::plan(std::size_t origin, double overflow,
                                       const std::vector<double>& spare,
                                       const std::vector<bool>& reachable) {
  AGORA_REQUIRE(origin < n_, "unknown proxy");
  AGORA_REQUIRE(spare.size() == n_, "spare capacity vector size mismatch");
  AGORA_REQUIRE(reachable.empty() || reachable.size() == n_,
                "reachability mask size mismatch");
  obs::ScopedTimer plan_timer(obs_plan_seconds_);
  obs_plans_->inc();
  RedirectDecision dec;
  dec.absorb.assign(n_, 0.0);
  if (overflow <= 0.0 || kind_ == SchedulerKind::None) {
    dec.absorb[origin] = std::max(0.0, overflow);
    return dec;
  }

  // Graceful degradation: a proxy whose availability is stale/unreachable
  // must not be planned as a donor -- its spare is treated as zero rather
  // than trusting phantom capacity. The origin always plans itself.
  usable_ = spare;
  budget_ = static_budget_;
  if (!reachable.empty()) {
    for (std::size_t k = 0; k < n_; ++k) {
      if (k == origin || reachable[k]) continue;
      usable_[k] = 0.0;
      budget_[k] = 0.0;
      ++dec.masked_donors;
    }
    obs_masked_donors_->inc(dec.masked_donors);
  }

  if (kind_ == SchedulerKind::Lp) {
    if (usable_ != last_caps_) {
      allocator_->set_capacities(std::span<const double>(usable_));
      last_caps_ = usable_;
    }
    // Partial redirection: place as much of the overflow as transitive
    // agreements allow; the LP decides the local/remote split (the origin's
    // own spare enters as d_origin) and minimizes the global perturbation.
    const double reachable = allocator_->available_to(origin);
    const double x = std::min(overflow, reachable * (1.0 - 1e-9));
    if (x <= 1e-12) {
      dec.absorb[origin] = overflow;
      return dec;
    }
    alloc::AllocationPlan plan = allocator_->allocate(origin, x);
    dec.lp_iterations = plan.lp_iterations;
    dec.certified = plan.certified;
    dec.solver_fallbacks = plan.solver_fallbacks;
    if (!plan.satisfied()) {
      // Either a certified "cannot place this much" or an exhausted solve
      // chain (PlanStatus::Denied). Both degrade to local-only admission:
      // the overflow is absorbed at the origin, never redirected on an
      // unverified answer.
      dec.degraded_local = plan.status == alloc::PlanStatus::Denied;
      dec.absorb[origin] = overflow;
      return dec;
    }
    dec.absorb = plan.draw;
    // Whatever the plan placed "at the origin itself" plus the unplaceable
    // remainder stays local.
    dec.absorb[origin] += overflow - x;
    return dec;
  }

  // Endpoint baseline: proportional split over direct shares against the
  // *static* per-epoch budgets -- deliberately blind to current load, as in
  // the paper ("the non-linear scheme tends to redistribute requests to
  // nearby ISPs no matter whether they are busy or not"). Remainder stays
  // local (endpoint_allocate puts it into draw[origin]).
  endpoint_sys_.capacity = budget_;  // structure persists; only V changes
  const alloc::AllocationPlan plan = alloc::endpoint_allocate(endpoint_sys_, origin, overflow);
  dec.absorb = plan.draw;
  return dec;
}

}  // namespace agora::proxysim
