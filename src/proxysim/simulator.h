// simulator.h -- discrete-event simulation of cooperating ISP web proxies
// (Section 4, Figure 4).
//
// Each proxy serves its front-end FIFO queue one request at a time; a
// request of response length x needs min(c, a + b*x) unit-power service
// seconds, divided by the proxy's power. When the queued demand at a proxy
// exceeds the configured threshold, the global scheduler is consulted: it
// receives every proxy's spare capacity over a short planning window and
// (under the LP scheme) solves the Section-3 allocation problem to decide
// which proxies absorb the overflow; queued requests are then redirected,
// each paying the configured redirection overhead. Waiting time is measured
// from arrival to start of service and attributed to the request's original
// arrival slot, matching the paper's per-10-minute-slot averages.
#pragma once

#include <vector>

#include "proxysim/config.h"
#include "proxysim/metrics.h"
#include "trace/request.h"

namespace agora::proxysim {

class Simulator {
 public:
  explicit Simulator(SimConfig cfg);

  /// Run to completion over the given per-proxy request streams (one vector
  /// of arrival-sorted requests per proxy). The simulation drains all queues
  /// past the horizon so every request is served exactly once.
  SimMetrics run(const std::vector<std::vector<trace::TraceRequest>>& traces);

 private:
  SimConfig cfg_;
};

}  // namespace agora::proxysim
