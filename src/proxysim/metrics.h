// metrics.h -- what the simulator measures: exactly the series the paper's
// figures plot (requests and average waiting time per 10-minute slot), plus
// redirection accounting and per-proxy aggregates.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/event_ring.h"
#include "util/stats.h"

namespace agora::proxysim {

struct SimMetrics {
  SimMetrics(double horizon, double slot_width, std::size_t num_proxies)
      : wait_by_slot(horizon, slot_width),
        requests_by_slot(static_cast<std::size_t>(horizon / slot_width + 0.5), 0),
        redirected_by_slot(static_cast<std::size_t>(horizon / slot_width + 0.5), 0),
        consults_by_slot(static_cast<std::size_t>(horizon / slot_width + 0.5), 0),
        degraded_by_slot(static_cast<std::size_t>(horizon / slot_width + 0.5), 0),
        per_proxy_wait(num_proxies) {
    wait_by_slot_per_proxy.reserve(num_proxies);
    for (std::size_t p = 0; p < num_proxies; ++p)
      wait_by_slot_per_proxy.emplace_back(horizon, slot_width);
  }

  /// Average waiting time per slot, keyed by the request's original arrival
  /// time (Figures 5, 6, 8-13).
  SlottedSeries wait_by_slot;
  /// Same series restricted to each origin proxy: the paper's figures plot
  /// "the average waiting time of a client request at a particular ISP".
  std::vector<SlottedSeries> wait_by_slot_per_proxy;
  /// Requests per slot (the solid line in Figure 5).
  std::vector<std::uint64_t> requests_by_slot;
  /// Redirected requests per slot (Figure 12's discussion).
  std::vector<std::uint64_t> redirected_by_slot;
  /// Scheduler consults per slot (admission breakdown over the day).
  std::vector<std::uint64_t> consults_by_slot;
  /// Consults that degraded to local-only admission per slot.
  std::vector<std::uint64_t> degraded_by_slot;

  StreamingStats wait_overall;
  std::vector<StreamingStats> per_proxy_wait;  ///< by origin proxy

  /// Wait distribution: 0.1 s buckets up to 10 minutes, then overflow.
  /// Quantiles beyond the range saturate at the range edge.
  Histogram wait_histogram{0.0, 600.0, 6000};

  std::uint64_t total_requests = 0;
  std::uint64_t redirected_requests = 0;
  std::uint64_t scheduler_consults = 0;
  std::uint64_t lp_iterations = 0;
  double redirected_demand = 0.0;

  /// Certified-enforcement telemetry (LP scheme only; see lp::SolvePipeline).
  std::uint64_t certified_consults = 0;   ///< consults backed by a certificate
  std::uint64_t degraded_consults = 0;    ///< chain exhausted -> local-only
  std::uint64_t solver_fallbacks = 0;     ///< extra solve stages across consults

  /// Structured trace of the run (admissions, redirections, consults, LP
  /// solve-chain progress), oldest first, in simulator virtual time.
  /// Identically seeded runs produce identical streams (proxysim_test
  /// asserts this). Bounded by SimConfig::event_ring_capacity.
  std::vector<obs::TraceEvent> events;
  /// Events the run emitted beyond the ring's capacity (0 = `events` is the
  /// complete stream).
  std::uint64_t events_overwritten = 0;

  double redirected_fraction() const {
    return total_requests == 0
               ? 0.0
               : static_cast<double>(redirected_requests) / static_cast<double>(total_requests);
  }
  /// Largest per-slot mean waiting time ("worst-case waiting time").
  double peak_slot_wait() const { return wait_by_slot.peak_slot_mean(); }
  double mean_wait() const { return wait_overall.mean(); }
  /// q in [0,1]; interpolated quantile of the wait distribution.
  double wait_quantile(double q) const { return wait_histogram.quantile(q); }
};

}  // namespace agora::proxysim
