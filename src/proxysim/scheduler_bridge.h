// scheduler_bridge.h -- the simulator's view of the global resource
// scheduler: given an overloaded proxy and the current spare capacities of
// all proxies, decide how much queued work each other proxy should absorb.
//
// The bridge owns an Allocator (transitive closure precomputed once; only
// capacities refresh each consult) for the LP scheme, and falls back to the
// proportional endpoint split for the baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/endpoint.h"
#include "proxysim/config.h"

namespace agora::proxysim {

struct RedirectDecision {
  /// Demand (unit-power service seconds) each proxy should absorb;
  /// entry [origin] is work that stays local.
  std::vector<double> absorb;
  std::uint64_t lp_iterations = 0;
  /// Donors excluded because their availability was stale/unreachable.
  std::size_t masked_donors = 0;
  /// The LP answer behind this decision carried a verified certificate
  /// (always false for the non-LP schemes, which make no LP claim).
  bool certified = false;
  /// The certified solve chain was exhausted and the scheduler degraded to
  /// local-only admission: all overflow stays at the origin.
  bool degraded_local = false;
  /// Solve-chain stages tried beyond the first (see lp::SolvePipeline).
  std::uint64_t solver_fallbacks = 0;
};

class SchedulerBridge {
 public:
  SchedulerBridge(const SimConfig& cfg);

  /// Plan redirection of up to `overflow` demand away from `origin`,
  /// given per-proxy spare capacity over the planning window.
  RedirectDecision plan(std::size_t origin, double overflow,
                        const std::vector<double>& spare);

  /// Degradation-aware variant: `reachable[k]` false means proxy k's
  /// availability report is stale or the proxy is unreachable, so it must
  /// not be planned as a donor (its spare is treated as zero -- the same
  /// graceful degradation the GRM applies under its staleness TTL). The
  /// origin itself is always planned. An empty mask means all reachable.
  RedirectDecision plan(std::size_t origin, double overflow,
                        const std::vector<double>& spare,
                        const std::vector<bool>& reachable);

  SchedulerKind kind() const { return kind_; }

  /// Degradation telemetry of the LP scheme's certified solve chain
  /// (nullptr for non-LP schemes).
  const lp::PipelineStats* solver_stats() const {
    return allocator_ ? allocator_->solver_stats() : nullptr;
  }

 private:
  SchedulerKind kind_;
  std::size_t n_;
  Matrix agreements_;
  std::vector<double> retained_;
  std::vector<double> static_budget_;
  /// LP scheme state (unused for Endpoint): either a direct Allocator
  /// (scheduler_threads == 0) or a sharded engine::EnforcementEngine, both
  /// behind the AllocatorBase interface. Persistent either way, so the
  /// transitive closure, model cache and solver workspace all amortize
  /// across the thousands of per-epoch consults of a trace run.
  std::unique_ptr<alloc::AllocatorBase> allocator_;
  /// Endpoint scheme state: the agreement structure never changes between
  /// consults, only the capacity vector is patched per plan() call.
  agree::AgreementSystem endpoint_sys_;
  /// Reused per-consult scratch (masked spare / budget vectors).
  std::vector<double> usable_, budget_;
  /// The capacity vector last pushed into the allocator. When a consult's
  /// masked spare is bitwise-unchanged, the set_capacities call is a
  /// semantic no-op and is skipped -- identical decisions either way, but
  /// the engine backend keeps its snapshot epoch, which is what lets the
  /// plan cache (engine/plan_cache.h) serve repeated shapes during stable
  /// spare-capacity windows.
  std::vector<double> last_caps_;
  /// Cached registry handles (see obs/metrics.h); resolved from the
  /// config's alloc_opts sink so bridge and allocator report to one place.
  obs::LogHistogram* obs_plan_seconds_ = nullptr;
  obs::Counter* obs_plans_ = nullptr;
  obs::Counter* obs_masked_donors_ = nullptr;
};

}  // namespace agora::proxysim
