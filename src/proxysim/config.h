// config.h -- configuration of the ISP web-proxy case study (Section 4).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "alloc/allocator.h"
#include "obs/sink.h"
#include "util/matrix.h"

namespace agora::proxysim {

/// The paper's per-request resource cost: a + b*x seconds, capped at c
/// ("to avoid extremely long response lengths from causing spikes in the
/// waiting time"). Defaults are the paper's values: a=0.1s, b=1e-6 s/byte,
/// c=30s.
struct CostModel {
  double base = 0.1;
  double per_byte = 1e-6;
  double cap = 30.0;

  double demand(std::uint64_t response_bytes) const {
    return std::min(cap, base + per_byte * static_cast<double>(response_bytes));
  }
};

enum class SchedulerKind {
  None,      ///< no sharing: every request is served where it arrives
  Lp,        ///< the paper's centralized LP scheme (Section 3)
  Endpoint,  ///< the proportional endpoint baseline (Figure 13)
};

struct SimConfig {
  std::size_t num_proxies = 10;
  double horizon = 86400.0;    ///< one 24h day
  double slot_width = 600.0;   ///< the paper's 10-minute reporting slots
  CostModel cost;

  /// Per-proxy processing power multipliers (Figure 7 sweeps this);
  /// empty = all 1.0. A proxy with power p serves demand d in d/p seconds.
  std::vector<double> power;

  /// Fixed overhead added to a redirected request's demand (Figure 12).
  double redirect_cost = 0.0;

  SchedulerKind scheduler = SchedulerKind::None;
  /// Relative agreement matrix S between proxies (ignored for None).
  Matrix agreements;
  /// Allocator options: transitivity level (Figures 8-11), formulation, ...
  alloc::AllocatorOptions alloc_opts;
  /// LP scheme backend: 0 (default) consults the in-process Allocator
  /// directly; >= 1 routes every consult through a sharded
  /// engine::EnforcementEngine with this many worker threads (agora_sim
  /// --threads N). threads=1 is decision-identical to the direct path.
  std::size_t scheduler_threads = 0;
  /// Epoch-keyed decision cache in front of the engine's shard queues
  /// (engine/plan_cache.h; agora_sim --plan-cache). Repeated consult shapes
  /// are answered in the caller's thread after a certified residual
  /// re-check. Only meaningful when scheduler_threads >= 1.
  bool engine_plan_cache = false;

  /// Consult the global scheduler when a proxy's queued demand (in
  /// unit-power service seconds) exceeds this.
  double queue_threshold = 5.0;
  /// Minimum spacing between consults at one proxy (seconds).
  double consult_cooldown = 5.0;
  /// Round-trip delay between consulting the (centralized) global scheduler
  /// and the decision taking effect at the proxy. The decision is computed
  /// against the availability known at consult time, so with a large
  /// latency it is stale by the time it is applied -- the practical cost of
  /// centralization the paper's GRM architecture implies
  /// (ablation_latency sweeps this).
  double decision_latency = 0.0;

  /// Scheduling epoch: the spare capacity V_i a proxy reports is what is
  /// left of this window after its current backlog AND its own expected
  /// arrivals (each proxy knows its diurnal demand curve). Matches the
  /// paper's 10-minute accounting granularity. A proxy running at local
  /// utilization >= 1 therefore reports V ~ 0 even when its instantaneous
  /// queue is short -- which is what throttles load from cascading through
  /// busy intermediaries under direct-only agreements (Figures 9-11).
  double planning_window = 600.0;
  /// After redirection the proxy keeps this fraction of the threshold
  /// queued locally.
  double keep_local_fraction = 0.5;

  // --- Ablation switches (see DESIGN.md, "Scheduler semantics") -----------
  /// Include each proxy's own expected arrivals in its reported spare
  /// capacity. Disabling reverts to queue-only spare, which lets load
  /// cascade through busy intermediaries (ablation_scheduler measures it).
  bool spare_includes_forecast = true;
  /// Cap per-donor redirection at the backlog-equalization point net of the
  /// redirect cost. Disabling re-enables the churn feedback under positive
  /// redirection costs.
  bool wait_benefit_cap = true;

  // --- Observability -------------------------------------------------------
  /// Metrics destination. The event-ring half of this sink is NOT used
  /// during the run: Simulator::run records events into a run-local ring
  /// (so the per-run stream is deterministic and isolated) and snapshots it
  /// into SimMetrics::events; the same run-local ring is plumbed into the
  /// allocator so scheduler and LP events interleave in one stream.
  obs::Sink sink = obs::Sink::global();
  /// Capacity of the run-local trace-event ring (rounded up to a power of
  /// two). When a run emits more events than this, the oldest are
  /// overwritten (SimMetrics::events_overwritten accounts for them). The
  /// default is deliberately small: at 48 bytes per slot a 4Ki-event ring
  /// stays L2-resident, keeping the per-request admission event within the
  /// <= 3% simulation-throughput overhead budget (see EXPERIMENTS.md); a
  /// 64Ki ring cycles a ~3 MB working set and costs ~10%. Raise it when a
  /// run's full event stream matters more than throughput.
  std::size_t event_ring_capacity = 1 << 12;

  double proxy_power(std::size_t i) const { return power.empty() ? 1.0 : power.at(i); }
};

}  // namespace agora::proxysim
