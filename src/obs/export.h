// export.h -- machine-readable snapshots of the observability state.
//
// Two formats:
//   * JSON lines: one flat JSON object per record ({"type":"counter",...},
//     {"type":"gauge",...}, {"type":"histogram",...}, {"type":"event",...}).
//     Histograms include count/sum/min/max/p50/p95/p99; per-bucket detail is
//     emitted as parallel "bucket_le"/"bucket_count" arrays.
//   * CSV: a single table with a `record` discriminator column, so one file
//     carries metrics and events together.
//
// `write_snapshot` picks the format from the path extension (".csv" -> CSV,
// anything else -> JSON lines) -- this is what --metrics-out invokes.
//
// A deliberately small parser for the JSONL format (flat objects, scalar
// values; arrays are skipped) backs the exporter round-trip tests.
#pragma once

#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/sink.h"

namespace agora::obs {

void write_metrics_jsonl(std::ostream& os, const MetricsRegistry& reg);
void write_events_jsonl(std::ostream& os, std::span<const TraceEvent> events);

void write_metrics_csv(std::ostream& os, const MetricsRegistry& reg);
void write_events_csv(std::ostream& os, std::span<const TraceEvent> events);

/// Full snapshot (metrics then events) in one stream, JSONL or CSV.
void write_snapshot_jsonl(std::ostream& os, const MetricsRegistry& reg,
                          std::span<const TraceEvent> events);
void write_snapshot_csv(std::ostream& os, const MetricsRegistry& reg,
                        std::span<const TraceEvent> events);

/// Write a snapshot to `path` (format by extension; see header comment).
/// Throws IoError on failure. When `extra_events` is non-empty it is
/// appended after the sink ring's events (the simulator's per-run stream).
void write_snapshot(const std::string& path, const Sink& sink,
                    std::span<const TraceEvent> extra_events = {});

/// One parsed flat-JSON record: field name -> raw scalar text (strings are
/// unescaped, numbers kept verbatim). Arrays are recorded as "[...]" raw.
using ParsedRecord = std::map<std::string, std::string>;

/// Parse a JSONL stream produced by the writers above. Throws IoError on
/// malformed input.
std::vector<ParsedRecord> parse_jsonl(std::istream& is);

}  // namespace agora::obs
