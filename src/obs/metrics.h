// metrics.h -- the observability substrate's metric primitives: named
// counters, gauges, and log-bucketed histograms, owned by a MetricsRegistry.
//
// Design constraints (see DESIGN.md §10):
//   * allocation-free on the hot path: looking a metric up by name may
//     allocate (and takes a lock), so instrumented layers resolve their
//     metrics ONCE at construction and keep raw pointers; inc()/set()/
//     observe() are then a handful of relaxed atomics,
//   * thread-safe: every mutator is an atomic RMW, so concurrent writers
//     never lose updates and never race (the obs hammer test runs under
//     ThreadSanitizer),
//   * compile-out: with AGORA_OBS_ENABLED=0 every mutator becomes a no-op
//     the optimizer deletes, which is how the <= 3% overhead budget is
//     verified (bench/micro_sim enabled vs compiled-out).
//
// Naming scheme: dot-separated lowercase path, `subsystem.object.metric`
// (e.g. "lp.pipeline.stage.warm_revised.seconds"). Histograms that measure
// wall-clock durations end in ".seconds"; virtual-time measurements end in
// ".vt_seconds".
#pragma once

#ifndef AGORA_OBS_ENABLED
#define AGORA_OBS_ENABLED 1
#endif

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace agora::obs {

inline constexpr bool kEnabled = AGORA_OBS_ENABLED != 0;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if constexpr (kEnabled) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written scalar (queue depths, capacities, ratios).
class Gauge {
 public:
  void set(double x) {
    if constexpr (kEnabled) v_.store(x, std::memory_order_relaxed);
  }
  void add(double dx) {
    if constexpr (kEnabled) {
      double cur = v_.load(std::memory_order_relaxed);
      while (!v_.compare_exchange_weak(cur, cur + dx, std::memory_order_relaxed)) {
      }
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram: one bucket per power of two from 2^kMinExp to
/// 2^kMaxExp, plus an underflow bucket for values in [0, 2^kMinExp) (and
/// any negative values) and an overflow bucket above the range. The span
/// 2^-34 .. 2^34 (~6e-11 .. ~1.7e10) covers nanosecond timings and
/// day-scale virtual-time waits alike at ~2x relative resolution, which is
/// plenty for latency work (percentiles interpolate geometrically within a
/// bucket).
class LogHistogram {
 public:
  static constexpr int kMinExp = -34;
  static constexpr int kMaxExp = 34;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp + 2);  // + underflow + overflow

  void observe(double x);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  double min() const { return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed); }
  double max() const { return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed); }

  /// q in [0,1]; geometric interpolation within the bucket, clamped to the
  /// observed [min, max]. 0 when empty.
  double quantile(double q) const;

  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i ("le" edge; +inf for the overflow
  /// bucket). Bucket 0 is the underflow bucket with edge 2^kMinExp.
  static double bucket_edge(std::size_t i);

  void reset();

 private:
  static std::size_t bucket_index(double x);

  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Find-or-create registry of named metrics. References returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime
/// (node-based storage), so instrumented code caches them. Lookup takes a
/// mutex; mutation through the returned reference does not.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LogHistogram& histogram(std::string_view name);

  /// Visit every metric in name order (deterministic export order). The
  /// visitor sees live objects; call when writers are quiescent for a
  /// consistent snapshot.
  void visit_counters(const std::function<void(const std::string&, const Counter&)>& f) const;
  void visit_gauges(const std::function<void(const std::string&, const Gauge&)>& f) const;
  void visit_histograms(
      const std::function<void(const std::string&, const LogHistogram&)>& f) const;

  /// Zero every registered metric (registrations survive).
  void reset();

  /// The process-wide default registry.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LogHistogram, std::less<>> histograms_;
};

}  // namespace agora::obs
