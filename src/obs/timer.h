// timer.h -- RAII profiling hook: measures the wall-clock duration of a
// scope and records it into a LogHistogram on destruction. With the
// observability layer compiled out (AGORA_OBS_ENABLED=0) both the clock
// reads and the record disappear entirely.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace agora::obs {

/// Monotonic wall-clock in seconds (steady_clock).
inline double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class ScopedTimer {
 public:
  /// `h` may be null (timer disabled for this scope).
  explicit ScopedTimer(LogHistogram* h) : h_(h) {
    if constexpr (kEnabled) {
      if (h_ != nullptr) start_ = now_seconds();
    }
  }
  ~ScopedTimer() {
    if constexpr (kEnabled) {
      if (h_ != nullptr) h_->observe(now_seconds() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed() const {
    if constexpr (kEnabled) return h_ != nullptr ? now_seconds() - start_ : 0.0;
    return 0.0;
  }

 private:
  LogHistogram* h_;
  double start_ = 0.0;
};

}  // namespace agora::obs
