// event_ring.h -- a fixed-capacity, lock-free ring of structured trace
// events. The ring keeps the most recent `capacity` events: producers never
// block and never allocate; when the ring is full the oldest events are
// overwritten (and accounted for via overwritten()).
//
// Concurrency contract: push() is safe from any number of threads (a ticket
// counter assigns each push a slot; a per-slot lap sequence serializes the
// rare wraparound collision where two writers land on the same slot).
// snapshot() requires writers to be quiescent -- it is meant for end-of-run
// export, not live tailing.
//
// Event taxonomy (see DESIGN.md §10): scheduler admission decisions, LP
// solve-chain progress, bus faults, and GRM/client protocol recoveries. The
// `time` field is DOMAIN time -- simulator/bus virtual seconds, or a solve
// ordinal for layers without a clock -- never wall-clock, so identically
// seeded runs produce byte-identical event streams (asserted in
// proxysim_test). Wall-clock durations belong in LogHistograms instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"  // AGORA_OBS_ENABLED / kEnabled

namespace agora::obs {

enum class EventKind : std::uint32_t {
  // proxysim admission decisions
  RequestAdmitted = 0,   ///< actor=proxy, peer=origin, a=wait s, b=demand s
  RequestRedirected,     ///< actor=donor origin, peer=absorber, a=demand, b=cost
  RequestDenied,         ///< actor=principal, a=amount (alloc denial / rms deadline)
  ConsultStarted,        ///< actor=proxy, a=overflow demand
  ConsultDegraded,       ///< actor=proxy, a=overflow kept local
  // lp solve chain (time = solve ordinal)
  LpSolveStarted,        ///< actor=solve ordinal
  LpSolveCertified,      ///< actor=solve ordinal, peer=stage, a=fallbacks, b=pivots
  LpSolveFallback,       ///< actor=solve ordinal, peer=failed stage
  LpSolveExhausted,      ///< actor=solve ordinal, a=stages tried
  // rms bus fault layer (time = bus virtual time)
  BusFaultDrop,          ///< actor=from, peer=to
  BusFaultDuplicate,     ///< actor=from, peer=to
  BusFaultCrashLoss,     ///< actor=endpoint
  BusFaultPartitionLoss, ///< actor=from, peer=to
  // rms protocol recoveries (time = bus virtual time)
  GrmRetry,              ///< actor=client endpoint, peer=grm, a=attempt
  GrmReserveRetry,       ///< actor=grm, peer=site, a=attempt
  GrmResync,             ///< actor=grm, peer=lrm site
  ClientDeadline,        ///< actor=client endpoint, a=attempts made
  // engine shard workers (time = per-shard op ordinal)
  EngineBatch,           ///< actor=shard, a=batch size; only when size > 1
  // replicated GRM (time = bus virtual time)
  LeaderElected,         ///< actor=replica, a=term
  LogTruncate,           ///< actor=replica, a=first index kept/dropped, b=entries dropped
  ReplicaSnapshot,       ///< actor=replica, peer=leader, a=snapshot last index
  ClientRedirect,        ///< actor=client endpoint, peer=new target, a=attempt
};

inline const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::RequestAdmitted: return "request_admitted";
    case EventKind::RequestRedirected: return "request_redirected";
    case EventKind::RequestDenied: return "request_denied";
    case EventKind::ConsultStarted: return "consult_started";
    case EventKind::ConsultDegraded: return "consult_degraded";
    case EventKind::LpSolveStarted: return "lp_solve_started";
    case EventKind::LpSolveCertified: return "lp_solve_certified";
    case EventKind::LpSolveFallback: return "lp_solve_fallback";
    case EventKind::LpSolveExhausted: return "lp_solve_exhausted";
    case EventKind::BusFaultDrop: return "bus_fault_drop";
    case EventKind::BusFaultDuplicate: return "bus_fault_duplicate";
    case EventKind::BusFaultCrashLoss: return "bus_fault_crash_loss";
    case EventKind::BusFaultPartitionLoss: return "bus_fault_partition_loss";
    case EventKind::GrmRetry: return "grm_retry";
    case EventKind::GrmReserveRetry: return "grm_reserve_retry";
    case EventKind::GrmResync: return "grm_resync";
    case EventKind::ClientDeadline: return "client_deadline";
    case EventKind::EngineBatch: return "engine_batch";
    case EventKind::LeaderElected: return "leader_elected";
    case EventKind::LogTruncate: return "log_truncate";
    case EventKind::ReplicaSnapshot: return "replica_snapshot";
    case EventKind::ClientRedirect: return "client_redirect";
  }
  return "unknown";
}

struct TraceEvent {
  double time = 0.0;  ///< domain time (virtual seconds or ordinal), not wall
  EventKind kind = EventKind::RequestAdmitted;
  std::uint32_t actor = 0;
  std::uint32_t peer = 0;
  std::uint32_t pad_ = 0;  ///< keeps the struct trivially comparable
  double a = 0.0;
  double b = 0.0;

  friend bool operator==(const TraceEvent& x, const TraceEvent& y) {
    return x.time == y.time && x.kind == y.kind && x.actor == y.actor && x.peer == y.peer &&
           x.a == y.a && x.b == y.b;
  }
};

class EventRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit EventRing(std::size_t capacity = 16384) {
    std::size_t cap = 8;
    shift_ = 3;
    while (cap < capacity) {
      cap <<= 1;
      ++shift_;
    }
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return mask_ + 1; }

  void push(const TraceEvent& ev) {
    if constexpr (!kEnabled) {
      (void)ev;
      return;
    }
    const std::uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & mask_];
    const std::uint64_t lap = ticket >> shift();
    // Claim the slot for this lap: its sequence must equal 2*lap (previous
    // lap fully written). On a wraparound collision -- another writer still
    // inside the slot for the previous lap -- spin briefly; the write is a
    // bounded struct copy.
    std::uint64_t expect = 2 * lap;
    while (!s.seq.compare_exchange_weak(expect, 2 * lap + 1, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      if (expect > 2 * lap) return;  // a later lap already owns the slot
      expect = 2 * lap;
    }
    s.ev = ev;
    s.seq.store(2 * lap + 2, std::memory_order_release);
  }

  void emit(double time, EventKind kind, std::uint32_t actor = 0, std::uint32_t peer = 0,
            double a = 0.0, double b = 0.0) {
    if constexpr (kEnabled) push(TraceEvent{time, kind, actor, peer, 0, a, b});
  }

  /// Total pushes ever attempted.
  std::uint64_t pushed() const { return cursor_.load(std::memory_order_relaxed); }
  /// Events lost to overwrite (pushes beyond capacity).
  std::uint64_t overwritten() const {
    const std::uint64_t n = pushed();
    return n > capacity() ? n - capacity() : 0;
  }
  /// Events currently retained.
  std::size_t size() const {
    const std::uint64_t n = pushed();
    return n < capacity() ? static_cast<std::size_t>(n) : capacity();
  }

  /// Copy out the retained events, oldest first. Writers must be quiescent.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    const std::uint64_t end = pushed();
    const std::uint64_t cap = capacity();
    const std::uint64_t begin = end > cap ? end - cap : 0;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t t = begin; t < end; ++t) {
      const Slot& s = slots_[t & mask_];
      // A slot whose lap sequence does not match was reclaimed by a later
      // lap (wraparound collision drop); skip the stale ticket.
      if (s.seq.load(std::memory_order_acquire) == 2 * (t >> shift()) + 2)
        out.push_back(s.ev);
    }
    return out;
  }

  void clear() {
    for (auto& s : slots_) s.seq.store(0, std::memory_order_relaxed);
    cursor_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    TraceEvent ev;
  };

  unsigned shift() const { return shift_; }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  unsigned shift_ = 3;
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace agora::obs
