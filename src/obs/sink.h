// sink.h -- where an instrumented layer sends its telemetry: a metrics
// registry plus an event ring, passed by value (two raw pointers, not
// owning). Every instrumented options struct (lp::PipelineOptions,
// alloc::AllocatorOptions, rms::ClientOptions, proxysim::SimConfig, ...)
// carries a Sink defaulting to the process-wide global one, so programs get
// a coherent snapshot for free while tests can plug in private instances
// for isolation and determinism assertions.
#pragma once

#include "obs/event_ring.h"
#include "obs/metrics.h"

namespace agora::obs {

struct Sink {
  MetricsRegistry* registry = nullptr;
  EventRing* events = nullptr;

  /// Resolve a metric, tolerating a null registry (returns a process-local
  /// scratch metric that is never exported -- instrumented code stays
  /// branch-free).
  Counter& counter(std::string_view name) const;
  Gauge& gauge(std::string_view name) const;
  LogHistogram& histogram(std::string_view name) const;

  void event(double time, EventKind kind, std::uint32_t actor = 0, std::uint32_t peer = 0,
             double a = 0.0, double b = 0.0) const {
    if constexpr (kEnabled) {
      if (events != nullptr) events->emit(time, kind, actor, peer, a, b);
    }
  }

  /// The process-wide default sink (global registry + a 16Ki-event ring).
  static Sink global();
  /// A sink that drops everything (null registry lookups resolve to
  /// scratch metrics; events vanish).
  static Sink none() { return Sink{}; }
};

}  // namespace agora::obs
