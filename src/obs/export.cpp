#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace agora::obs {

namespace {

/// Shortest round-trippable decimal representation of a double.
std::string fmt_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g forms when they round-trip exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char trial[32];
    std::snprintf(trial, sizeof(trial), "%.*g", prec, v);
    if (std::strtod(trial, nullptr) == v) return trial;
  }
  return buf;
}

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_metrics_jsonl(std::ostream& os, const MetricsRegistry& reg) {
  reg.visit_counters([&](std::string_view name, const Counter& c) {
    os << R"({"type":"counter","name":)";
    json_string(os, name);
    os << R"(,"value":)" << c.value() << "}\n";
  });
  reg.visit_gauges([&](std::string_view name, const Gauge& g) {
    os << R"({"type":"gauge","name":)";
    json_string(os, name);
    os << R"(,"value":)" << fmt_double(g.value()) << "}\n";
  });
  reg.visit_histograms([&](std::string_view name, const LogHistogram& h) {
    os << R"({"type":"histogram","name":)";
    json_string(os, name);
    os << R"(,"count":)" << h.count() << R"(,"sum":)" << fmt_double(h.sum());
    if (h.count() > 0) {
      os << R"(,"min":)" << fmt_double(h.min()) << R"(,"max":)" << fmt_double(h.max())
         << R"(,"p50":)" << fmt_double(h.quantile(0.5)) << R"(,"p95":)"
         << fmt_double(h.quantile(0.95)) << R"(,"p99":)" << fmt_double(h.quantile(0.99));
      os << R"(,"bucket_le":[)";
      bool first = true;
      for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
        if (h.bucket_count(i) == 0) continue;
        if (!first) os << ',';
        first = false;
        os << fmt_double(h.bucket_edge(i));
      }
      os << R"(],"bucket_count":[)";
      first = true;
      for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
        if (h.bucket_count(i) == 0) continue;
        if (!first) os << ',';
        first = false;
        os << h.bucket_count(i);
      }
      os << ']';
    }
    os << "}\n";
  });
}

void write_events_jsonl(std::ostream& os, std::span<const TraceEvent> events) {
  for (const TraceEvent& ev : events) {
    os << R"({"type":"event","t":)" << fmt_double(ev.time) << R"(,"kind":")"
       << to_string(ev.kind) << R"(","actor":)" << ev.actor << R"(,"peer":)" << ev.peer
       << R"(,"a":)" << fmt_double(ev.a) << R"(,"b":)" << fmt_double(ev.b) << "}\n";
  }
}

void write_snapshot_jsonl(std::ostream& os, const MetricsRegistry& reg,
                          std::span<const TraceEvent> events) {
  write_metrics_jsonl(os, reg);
  write_events_jsonl(os, events);
}

namespace {

/// CSV quoting per util/csv.h convention: quote when the field contains a
/// comma, quote, or newline.
void csv_field(std::ostream& os, std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

constexpr const char* kCsvHeader =
    "record,name,value,count,sum,min,max,p50,p95,p99,t,kind,actor,peer,a,b\n";

}  // namespace

void write_metrics_csv(std::ostream& os, const MetricsRegistry& reg) {
  reg.visit_counters([&](std::string_view name, const Counter& c) {
    os << "counter,";
    csv_field(os, name);
    os << ',' << c.value() << ",,,,,,,,,,,,,\n";
  });
  reg.visit_gauges([&](std::string_view name, const Gauge& g) {
    os << "gauge,";
    csv_field(os, name);
    os << ',' << fmt_double(g.value()) << ",,,,,,,,,,,,,\n";
  });
  reg.visit_histograms([&](std::string_view name, const LogHistogram& h) {
    os << "histogram,";
    csv_field(os, name);
    os << ",," << h.count() << ',' << fmt_double(h.sum()) << ',';
    if (h.count() > 0) {
      os << fmt_double(h.min()) << ',' << fmt_double(h.max()) << ','
         << fmt_double(h.quantile(0.5)) << ',' << fmt_double(h.quantile(0.95)) << ','
         << fmt_double(h.quantile(0.99));
    } else {
      os << ",,,,";
    }
    os << ",,,,,,\n";
  });
}

void write_events_csv(std::ostream& os, std::span<const TraceEvent> events) {
  for (const TraceEvent& ev : events) {
    os << "event,,,,,,,,,," << fmt_double(ev.time) << ',' << to_string(ev.kind) << ','
       << ev.actor << ',' << ev.peer << ',' << fmt_double(ev.a) << ',' << fmt_double(ev.b)
       << '\n';
  }
}

void write_snapshot_csv(std::ostream& os, const MetricsRegistry& reg,
                        std::span<const TraceEvent> events) {
  os << kCsvHeader;
  write_metrics_csv(os, reg);
  write_events_csv(os, events);
}

void write_snapshot(const std::string& path, const Sink& sink,
                    std::span<const TraceEvent> extra_events) {
  std::ofstream f(path);
  if (!f) throw IoError("cannot open for writing: " + path);

  static const MetricsRegistry empty_registry;
  const MetricsRegistry& reg = sink.registry != nullptr ? *sink.registry : empty_registry;
  std::vector<TraceEvent> events;
  if (sink.events != nullptr) events = sink.events->snapshot();
  events.insert(events.end(), extra_events.begin(), extra_events.end());

  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_snapshot_csv(f, reg, events);
  } else {
    write_snapshot_jsonl(f, reg, events);
  }
  f.flush();
  if (!f) throw IoError("write failed: " + path);
}

namespace {

class JsonCursor {
 public:
  JsonCursor(std::string_view s, int line) : s_(s), line_(line) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of line");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (at_end() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("dangling escape");
        char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  std::string parse_scalar() {
    const char c = peek();
    if (c == '"') return parse_string();
    if (c == '[') {
      // Record arrays verbatim (the round-trip tests reparse them ad hoc).
      const std::size_t start = pos_;
      int depth = 0;
      do {
        if (pos_ >= s_.size()) fail("unterminated array");
        if (s_[pos_] == '[') ++depth;
        if (s_[pos_] == ']') --depth;
        ++pos_;
      } while (depth > 0);
      return std::string(s_.substr(start, pos_ - start));
    }
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}') ++pos_;
    std::string out(s_.substr(start, pos_ - start));
    while (!out.empty() && std::isspace(static_cast<unsigned char>(out.back()))) out.pop_back();
    if (out.empty()) fail("empty scalar");
    return out;
  }

  [[noreturn]] void fail(const std::string& msg) {
    throw IoError("jsonl parse error (line " + std::to_string(line_) + ", col " +
                        std::to_string(pos_ + 1) + "): " + msg);
  }

 private:
  std::string_view s_;
  int line_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<ParsedRecord> parse_jsonl(std::istream& is) {
  std::vector<ParsedRecord> out;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    JsonCursor cur(line, lineno);
    if (cur.at_end()) continue;
    cur.expect('{');
    ParsedRecord rec;
    if (!cur.consume('}')) {
      for (;;) {
        std::string key = cur.parse_string();
        cur.expect(':');
        rec[std::move(key)] = cur.parse_scalar();
        if (cur.consume(',')) continue;
        cur.expect('}');
        break;
      }
    }
    if (!cur.at_end()) cur.fail("trailing characters after object");
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace agora::obs
