#include "obs/sink.h"

namespace agora::obs {

namespace {

/// Discard registry for null-sink lookups: metrics resolve and mutate
/// normally but are never exported. Keeps call sites branch-free.
MetricsRegistry& scratch_registry() {
  static MetricsRegistry reg;
  return reg;
}

EventRing& global_ring() {
  static EventRing ring(16384);
  return ring;
}

}  // namespace

Counter& Sink::counter(std::string_view name) const {
  return (registry != nullptr ? *registry : scratch_registry()).counter(name);
}

Gauge& Sink::gauge(std::string_view name) const {
  return (registry != nullptr ? *registry : scratch_registry()).gauge(name);
}

LogHistogram& Sink::histogram(std::string_view name) const {
  return (registry != nullptr ? *registry : scratch_registry()).histogram(name);
}

Sink Sink::global() { return Sink{&MetricsRegistry::global(), &global_ring()}; }

}  // namespace agora::obs
