#include "obs/metrics.h"

#include <algorithm>
#include <limits>

namespace agora::obs {

namespace {

void atomic_add(std::atomic<double>& a, double dx) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + dx, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (x < cur && !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (x > cur && !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t LogHistogram::bucket_index(double x) {
  if (!(x >= 0.0) || std::isnan(x)) return 0;  // negatives and NaN -> underflow
  if (x == 0.0) return 0;
  const int e = std::ilogb(x);
  if (e < kMinExp) return 0;
  if (e > kMaxExp) return kBuckets - 1;
  return static_cast<std::size_t>(e - kMinExp) + 1;
}

double LogHistogram::bucket_edge(std::size_t i) {
  if (i == 0) return std::ldexp(1.0, kMinExp);
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kMinExp + static_cast<int>(i));  // upper edge 2^(kMinExp+i)
}

void LogHistogram::observe(double x) {
  if constexpr (!kEnabled) {
    (void)x;
    return;
  }
  // First observation seeds min/max; count_ is bumped last so a concurrent
  // min()/max() reader that sees count > 0 also sees a seeded value.
  const std::uint64_t before = count_.load(std::memory_order_relaxed);
  if (before == 0) {
    double z = 0.0;
    min_.compare_exchange_strong(z, x, std::memory_order_relaxed);
    z = 0.0;
    max_.compare_exchange_strong(z, x, std::memory_order_relaxed);
  }
  atomic_min(min_, x);
  atomic_max(max_, x);
  atomic_add(sum_, x);
  buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LogHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double c = static_cast<double>(bucket_count(i));
    if (c == 0.0) continue;
    if (cum + c >= target) {
      const double frac = c > 0.0 ? std::clamp((target - cum) / c, 0.0, 1.0) : 0.0;
      double est;
      if (i == 0) {
        // Underflow bucket: interpolate linearly from zero.
        est = frac * bucket_edge(0);
      } else if (i == kBuckets - 1) {
        est = std::ldexp(1.0, kMaxExp + 1);  // beyond range; clamped below
      } else {
        const double lo = std::ldexp(1.0, kMinExp + static_cast<int>(i) - 1);
        est = lo * std::exp2(frac);  // geometric within [lo, 2*lo)
      }
      return std::clamp(est, min(), max());
    }
    cum += c;
  }
  return max();
}

void LogHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

void MetricsRegistry::visit_counters(
    const std::function<void(const std::string&, const Counter&)>& f) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) f(name, c);
}

void MetricsRegistry::visit_gauges(
    const std::function<void(const std::string&, const Gauge&)>& f) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, g] : gauges_) f(name, g);
}

void MetricsRegistry::visit_histograms(
    const std::function<void(const std::string&, const LogHistogram&)>& f) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : histograms_) f(name, h);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

}  // namespace agora::obs
