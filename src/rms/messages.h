// messages.h -- the message vocabulary between Local Resource Managers and
// the Global Resource Manager (Section 3.2, final paragraph):
//
//   "The GRM provides services to manage sharing agreements and to schedule
//    resources among local resource managers. LRMs are responsible for
//    providing resource availability information to the GRM dynamically,
//    and fulfilling resource allocation according to the GRM's decisions."
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace agora::rms {

/// LRM -> GRM: periodic/dirty availability report (one entry per resource).
struct AvailabilityReport {
  std::size_t lrm = 0;
  std::vector<double> available;
};

/// Client -> GRM: allocate `amounts` (per resource) on behalf of the
/// principal hosted at LRM `principal`, holding them for `duration` time.
struct AllocationRequest {
  std::uint64_t request_id = 0;
  std::size_t principal = 0;
  std::vector<double> amounts;
  double duration = 0.0;
};

/// GRM -> client: the decision.
struct AllocationReply {
  std::uint64_t request_id = 0;
  bool granted = false;
  /// Per resource, per LRM: how much was drawn where (empty when denied).
  std::vector<std::vector<double>> draws;
  std::string reason;
};

/// GRM -> LRM: reserve local capacity for a request (per resource).
struct ReserveCommand {
  std::uint64_t request_id = 0;
  std::vector<double> amounts;
  double duration = 0.0;
};

/// LRM -> GRM (and internal): reservation expired / job finished.
struct ReleaseNotice {
  std::uint64_t request_id = 0;
};

/// Agreement management service (GRM): change a relative share at runtime.
struct AgreementUpdate {
  std::size_t resource = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  double share = 0.0;
};

using Payload = std::variant<AvailabilityReport, AllocationRequest, AllocationReply,
                             ReserveCommand, ReleaseNotice, AgreementUpdate>;

}  // namespace agora::rms
