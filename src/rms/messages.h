// messages.h -- the message vocabulary between Local Resource Managers and
// the Global Resource Manager (Section 3.2, final paragraph):
//
//   "The GRM provides services to manage sharing agreements and to schedule
//    resources among local resource managers. LRMs are responsible for
//    providing resource availability information to the GRM dynamically,
//    and fulfilling resource allocation according to the GRM's decisions."
//
// The vocabulary also carries the hardening metadata the protocol needs on
// an unreliable bus: per-LRM report sequence numbers (duplicate/reorder
// suppression), retry attempt counters, explicit acks for reserve commands,
// a restart resync report, and a generic self-addressed timer tick.
//
// The second half of the vocabulary is the replicated-GRM quorum log
// (replica/raft.h, DESIGN.md §12): log entries carrying the commands a GRM
// state machine applies, the Raft-style election and replication RPCs, and
// the NotLeader redirect a follower sends a client.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace agora::rms {

/// LRM -> GRM: periodic/dirty availability report (one entry per resource).
struct AvailabilityReport {
  std::size_t lrm = 0;
  std::vector<double> available;
  double timestamp = 0.0;        ///< LRM-local bus time when measured
  std::uint64_t report_seq = 0;  ///< per-LRM monotone counter; 0 = unsequenced
};

/// Client -> GRM: allocate `amounts` (per resource) on behalf of the
/// principal hosted at LRM `principal`, holding them for `duration` time.
struct AllocationRequest {
  std::uint64_t request_id = 0;
  std::size_t principal = 0;
  std::vector<double> amounts;
  double duration = 0.0;
  std::uint32_t attempt = 0;  ///< 0 for the first send, bumped per retry
};

/// GRM -> client: the decision.
struct AllocationReply {
  std::uint64_t request_id = 0;
  bool granted = false;
  /// Per resource, per LRM: how much was drawn where (empty when denied).
  std::vector<std::vector<double>> draws;
  std::string reason;
};

/// GRM -> LRM: reserve local capacity for a request (per resource).
struct ReserveCommand {
  std::uint64_t request_id = 0;
  std::vector<double> amounts;
  double duration = 0.0;
  bool want_ack = false;  ///< set when the GRM retries until acknowledged
};

/// LRM -> GRM (and internal): reservation expired / job finished.
struct ReleaseNotice {
  std::uint64_t request_id = 0;
};

/// LRM -> GRM: a ReserveCommand was applied (or was already applied --
/// acks are idempotent, retried commands re-ack).
struct Ack {
  std::uint64_t request_id = 0;
  std::size_t site = 0;
};

/// LRM -> GRM after a restart: authoritative availability plus every
/// outstanding reservation, so the GRM can rebuild its view of the site.
struct LrmResync {
  struct Hold {
    std::uint64_t request_id = 0;
    std::vector<double> amounts;
    double expires_at = 0.0;  ///< 0 = open-ended reservation
  };
  std::size_t lrm = 0;
  double timestamp = 0.0;
  std::vector<double> available;
  std::vector<Hold> holds;
};

/// Self-addressed wake-up used for retry backoff and request deadlines.
/// Timers model an endpoint's local clock: the fault layer never drops them.
struct Timer {
  std::uint64_t token = 0;
};

/// Agreement management service (GRM): change a relative share at runtime.
struct AgreementUpdate {
  std::size_t resource = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  double share = 0.0;
};

// ---------------------------------------------------------------------------
// Replicated-GRM quorum log (replica/raft.h). Replica and site identifiers
// are plain indices; `origin` endpoints are bus EndpointIds (std::size_t).
// ---------------------------------------------------------------------------

struct GrmSnapshot;  // replica/state_machine.h

/// Leader bookkeeping entry appended on election so entries from earlier
/// terms commit promptly (the classic no-op); applying it changes nothing.
struct RaftNoop {};

/// What a replicated GRM state machine applies. Decisions, reports, resyncs
/// and agreement updates all flow through the log so every replica sees the
/// same sequence; replies/acks/timers stay node-local.
using LogCommand =
    std::variant<RaftNoop, AvailabilityReport, AllocationRequest, AgreementUpdate, LrmResync>;

struct LogEntry {
  std::uint64_t term = 0;
  std::uint64_t index = 0;
  /// Leader's bus time at append. Replicas apply with this time (not their
  /// local clock) so staleness masking is bit-identical everywhere.
  double time = 0.0;
  std::size_t origin = 0;  ///< endpoint to answer once the entry commits
  LogCommand command;
};

/// Candidate -> all: ask for a vote in `term`.
struct RequestVote {
  std::uint64_t term = 0;
  std::size_t candidate = 0;  ///< replica index
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;
};

struct VoteReply {
  std::uint64_t term = 0;
  std::size_t voter = 0;
  bool granted = false;
};

/// Leader -> follower: replicate `entries` after (prev_index, prev_term);
/// empty entries = heartbeat. `commit` piggybacks the leader's commit index.
struct AppendEntries {
  std::uint64_t term = 0;
  std::size_t leader = 0;
  std::uint64_t prev_index = 0;
  std::uint64_t prev_term = 0;
  std::vector<LogEntry> entries;
  std::uint64_t commit = 0;
};

struct AppendReply {
  std::uint64_t term = 0;
  std::size_t follower = 0;
  bool success = false;
  std::uint64_t match_index = 0;  ///< on success: highest index known replicated
  std::uint64_t hint_index = 0;   ///< on failure: follower's suggested next index
};

/// Leader -> lagging follower whose next entry was compacted away: the full
/// state machine at (last_index, last_term). The snapshot is shared, not
/// copied, so fault-layer duplication of this message stays cheap.
struct InstallSnapshot {
  std::uint64_t term = 0;
  std::size_t leader = 0;
  std::uint64_t last_index = 0;
  std::uint64_t last_term = 0;
  std::shared_ptr<const GrmSnapshot> state;
};

struct SnapshotReply {
  std::uint64_t term = 0;
  std::size_t follower = 0;
  std::uint64_t match_index = 0;
};

/// Follower/candidate -> client: resubmit to the leader (if known).
struct NotLeader {
  std::uint64_t request_id = 0;
  std::uint64_t term = 0;
  bool leader_known = false;
  std::size_t leader = 0;  ///< bus endpoint of the believed leader
};

// ---------------------------------------------------------------------------
// Federated settlement (engine/federation.h, DESIGN.md §15): the coordinator
// distributes border-credit balances to borrower shards over the bus. Both
// messages are idempotent by settle_id -- at-least-once delivery with
// receiver-side dedup yields exactly-once application, which the tier2-chaos
// federation suite drives through the fault plan.
// ---------------------------------------------------------------------------

/// Coordinator -> borrower shard: the shard's full inbound credit table as
/// of settlement round `settle_id` (absolute balances, not deltas, so a
/// duplicated or replayed grant is harmlessly re-applied).
struct CreditGrant {
  std::uint64_t settle_id = 0;
  std::size_t shard = 0;
  std::vector<std::uint64_t> credit_ids;
  std::vector<double> remaining;  ///< parallel to credit_ids
};

/// Borrower shard -> coordinator: round `settle_id` applied (or already
/// applied -- re-acked on retry, like ReserveCommand's Ack).
struct CreditAck {
  std::uint64_t settle_id = 0;
  std::size_t shard = 0;
};

using Payload = std::variant<AvailabilityReport, AllocationRequest, AllocationReply,
                             ReserveCommand, ReleaseNotice, AgreementUpdate, Ack,
                             LrmResync, Timer, RequestVote, VoteReply, AppendEntries,
                             AppendReply, InstallSnapshot, SnapshotReply, NotLeader,
                             CreditGrant, CreditAck>;

}  // namespace agora::rms
