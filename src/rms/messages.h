// messages.h -- the message vocabulary between Local Resource Managers and
// the Global Resource Manager (Section 3.2, final paragraph):
//
//   "The GRM provides services to manage sharing agreements and to schedule
//    resources among local resource managers. LRMs are responsible for
//    providing resource availability information to the GRM dynamically,
//    and fulfilling resource allocation according to the GRM's decisions."
//
// The vocabulary also carries the hardening metadata the protocol needs on
// an unreliable bus: per-LRM report sequence numbers (duplicate/reorder
// suppression), retry attempt counters, explicit acks for reserve commands,
// a restart resync report, and a generic self-addressed timer tick.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace agora::rms {

/// LRM -> GRM: periodic/dirty availability report (one entry per resource).
struct AvailabilityReport {
  std::size_t lrm = 0;
  std::vector<double> available;
  double timestamp = 0.0;        ///< LRM-local bus time when measured
  std::uint64_t report_seq = 0;  ///< per-LRM monotone counter; 0 = unsequenced
};

/// Client -> GRM: allocate `amounts` (per resource) on behalf of the
/// principal hosted at LRM `principal`, holding them for `duration` time.
struct AllocationRequest {
  std::uint64_t request_id = 0;
  std::size_t principal = 0;
  std::vector<double> amounts;
  double duration = 0.0;
  std::uint32_t attempt = 0;  ///< 0 for the first send, bumped per retry
};

/// GRM -> client: the decision.
struct AllocationReply {
  std::uint64_t request_id = 0;
  bool granted = false;
  /// Per resource, per LRM: how much was drawn where (empty when denied).
  std::vector<std::vector<double>> draws;
  std::string reason;
};

/// GRM -> LRM: reserve local capacity for a request (per resource).
struct ReserveCommand {
  std::uint64_t request_id = 0;
  std::vector<double> amounts;
  double duration = 0.0;
  bool want_ack = false;  ///< set when the GRM retries until acknowledged
};

/// LRM -> GRM (and internal): reservation expired / job finished.
struct ReleaseNotice {
  std::uint64_t request_id = 0;
};

/// LRM -> GRM: a ReserveCommand was applied (or was already applied --
/// acks are idempotent, retried commands re-ack).
struct Ack {
  std::uint64_t request_id = 0;
  std::size_t site = 0;
};

/// LRM -> GRM after a restart: authoritative availability plus every
/// outstanding reservation, so the GRM can rebuild its view of the site.
struct LrmResync {
  struct Hold {
    std::uint64_t request_id = 0;
    std::vector<double> amounts;
    double expires_at = 0.0;  ///< 0 = open-ended reservation
  };
  std::size_t lrm = 0;
  double timestamp = 0.0;
  std::vector<double> available;
  std::vector<Hold> holds;
};

/// Self-addressed wake-up used for retry backoff and request deadlines.
/// Timers model an endpoint's local clock: the fault layer never drops them.
struct Timer {
  std::uint64_t token = 0;
};

/// Agreement management service (GRM): change a relative share at runtime.
struct AgreementUpdate {
  std::size_t resource = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  double share = 0.0;
};

using Payload = std::variant<AvailabilityReport, AllocationRequest, AllocationReply,
                             ReserveCommand, ReleaseNotice, AgreementUpdate, Ack,
                             LrmResync, Timer>;

}  // namespace agora::rms
