#include "rms/bus.h"

#include <limits>

namespace agora::rms {

EndpointId MessageBus::add_endpoint(Handler handler) {
  AGORA_REQUIRE(handler != nullptr, "endpoint needs a handler");
  endpoints_.push_back(std::move(handler));
  return endpoints_.size() - 1;
}

void MessageBus::post(EndpointId from, EndpointId to, Payload payload, double latency) {
  AGORA_REQUIRE(from < endpoints_.size() && to < endpoints_.size(), "unknown endpoint");
  AGORA_REQUIRE(latency >= 0.0, "latency must be non-negative");
  queue_.push(Envelope{now_ + latency, seq_++, from, to, std::move(payload)});
}

bool MessageBus::step() {
  if (queue_.empty()) return false;
  Envelope env = queue_.top();
  queue_.pop();
  now_ = env.deliver_at;
  ++delivered_;
  endpoints_[env.to](env);
  return true;
}

std::size_t MessageBus::run_until(double t) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().deliver_at <= t) {
    step();
    ++count;
  }
  return count;
}

double MessageBus::next_time() const {
  return queue_.empty() ? std::numeric_limits<double>::quiet_NaN() : queue_.top().deliver_at;
}

std::size_t MessageBus::run_until_idle(std::size_t max_messages) {
  std::size_t count = 0;
  while (step()) {
    if (++count > max_messages)
      throw InternalError("message bus did not quiesce (possible message loop)");
  }
  return count;
}

}  // namespace agora::rms
