#include "rms/bus.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace agora::rms {

MessageBus::MessageBus() { set_sink(obs::Sink::global()); }

void MessageBus::set_sink(obs::Sink sink) {
  sink_ = sink;
  obs_delivered_ = &sink_.counter("rms.bus.delivered");
  obs_dropped_ = &sink_.counter("rms.bus.dropped");
  obs_duplicated_ = &sink_.counter("rms.bus.duplicated");
  obs_lost_crash_ = &sink_.counter("rms.bus.lost_crash");
  obs_lost_partition_ = &sink_.counter("rms.bus.lost_partition");
}

EndpointId MessageBus::add_endpoint(Handler handler) {
  AGORA_REQUIRE(handler != nullptr, "endpoint needs a handler");
  endpoints_.push_back(std::move(handler));
  restart_handlers_.emplace_back();
  return endpoints_.size() - 1;
}

void MessageBus::set_restart_handler(EndpointId endpoint, RestartHandler handler) {
  AGORA_REQUIRE(endpoint < endpoints_.size(), "unknown endpoint");
  restart_handlers_[endpoint] = std::move(handler);
}

void MessageBus::set_fault_plan(FaultPlan plan) {
  plan.validate();
  plan_ = std::move(plan);
  fault_active_ = plan_.active();
  rng_ = Pcg32(plan_.seed);
  restarts_.clear();
  next_restart_ = 0;
  for (const CrashWindow& w : plan_.crashes)
    if (w.end > now_) restarts_.emplace_back(w.end, w.endpoint);
  std::sort(restarts_.begin(), restarts_.end());
}

void MessageBus::post(EndpointId from, EndpointId to, Payload payload, double latency) {
  AGORA_REQUIRE(from < endpoints_.size() && to < endpoints_.size(), "unknown endpoint");
  AGORA_REQUIRE(latency >= 0.0, "latency must be non-negative");
  if (fault_active_) {
    // A crashed sender cannot put anything on the wire.
    if (plan_.crashed(from, now_)) {
      ++dropped_;
      ++lost_crash_;
      obs_dropped_->inc();
      obs_lost_crash_->inc();
      sink_.event(now_, obs::EventKind::BusFaultCrashLoss, static_cast<std::uint32_t>(from));
      return;
    }
    // Self-messages model local clocks (timers, scheduled releases), not
    // the network: they bypass link faults and partitions.
    if (from != to) {
      const LinkFaults& lf = plan_.link(from, to);
      if (lf.any()) {
        if (lf.drop > 0.0 && rng_.next_double() < lf.drop) {
          ++dropped_;
          obs_dropped_->inc();
          sink_.event(now_, obs::EventKind::BusFaultDrop, static_cast<std::uint32_t>(from),
                      static_cast<std::uint32_t>(to));
          return;
        }
        const double extra = lf.jitter > 0.0 ? rng_.uniform(0.0, lf.jitter) : 0.0;
        queue_.push(Envelope{now_ + latency + extra, seq_++, from, to, payload});
        if (lf.duplicate > 0.0 && rng_.next_double() < lf.duplicate) {
          const double extra2 = lf.jitter > 0.0 ? rng_.uniform(0.0, lf.jitter) : 0.0;
          ++duplicated_;
          obs_duplicated_->inc();
          sink_.event(now_, obs::EventKind::BusFaultDuplicate, static_cast<std::uint32_t>(from),
                      static_cast<std::uint32_t>(to));
          queue_.push(Envelope{now_ + latency + extra2, seq_++, from, to, std::move(payload)});
        }
        return;
      }
    }
  }
  queue_.push(Envelope{now_ + latency, seq_++, from, to, std::move(payload)});
}

bool MessageBus::step() {
  const bool have_msg = !queue_.empty();
  const bool have_restart = restart_pending();
  if (!have_msg && !have_restart) return false;

  if (have_restart &&
      (!have_msg || restarts_[next_restart_].first <= queue_.top().deliver_at)) {
    const auto [t, endpoint] = restarts_[next_restart_++];
    now_ = std::max(now_, t);
    if (restart_handlers_[endpoint]) restart_handlers_[endpoint]();
    return true;
  }

  Envelope env = queue_.top();
  queue_.pop();
  now_ = env.deliver_at;
  if (fault_active_) {
    if (plan_.crashed(env.to, now_)) {
      ++dropped_;
      ++lost_crash_;
      obs_dropped_->inc();
      obs_lost_crash_->inc();
      sink_.event(now_, obs::EventKind::BusFaultCrashLoss, static_cast<std::uint32_t>(env.to));
      return true;
    }
    if (env.from != env.to && plan_.severed(env.from, env.to, now_)) {
      ++dropped_;
      ++lost_partition_;
      obs_dropped_->inc();
      obs_lost_partition_->inc();
      sink_.event(now_, obs::EventKind::BusFaultPartitionLoss,
                  static_cast<std::uint32_t>(env.from), static_cast<std::uint32_t>(env.to));
      return true;
    }
  }
  ++delivered_;
  obs_delivered_->inc();
  endpoints_[env.to](env);
  return true;
}

std::size_t MessageBus::run_until(double t) {
  std::size_t count = 0;
  while (true) {
    const double next = next_event_time();
    if (std::isnan(next) || next > t) break;
    step();
    ++count;
  }
  // The wall clock reaches t even when no event lands exactly there, so
  // anything posted afterwards (reports, requests) is stamped at t rather
  // than at the last delivery time.
  if (std::isfinite(t) && t > now_) now_ = t;
  return count;
}

double MessageBus::next_time() const {
  return queue_.empty() ? std::numeric_limits<double>::quiet_NaN() : queue_.top().deliver_at;
}

double MessageBus::next_event_time() const {
  double next = next_time();
  if (restart_pending()) {
    const double r = restarts_[next_restart_].first;
    next = std::isnan(next) ? r : std::min(next, r);
  }
  return next;
}

QuiesceStats MessageBus::run_until_idle(std::size_t max_messages) {
  QuiesceStats stats;
  const std::uint64_t delivered0 = delivered_;
  std::size_t count = 0;
  while (step()) {
    if (++count > max_messages) {
      throw InternalError(
          "message bus did not quiesce (possible message loop): queue depth " +
          std::to_string(queue_.size()) + " at sim time " + std::to_string(now_) + ", " +
          std::to_string(delivered_ - delivered0) + " delivered, " +
          std::to_string(dropped_ - drain_dropped_) + " dropped, " +
          std::to_string(duplicated_ - drain_duplicated_) + " duplicated since last drain");
    }
  }
  stats.delivered = static_cast<std::size_t>(delivered_ - delivered0);
  stats.dropped = static_cast<std::size_t>(dropped_ - drain_dropped_);
  stats.duplicated = static_cast<std::size_t>(duplicated_ - drain_duplicated_);
  drain_dropped_ = dropped_;
  drain_duplicated_ = duplicated_;
  return stats;
}

}  // namespace agora::rms
