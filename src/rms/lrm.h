// lrm.h -- Local Resource Manager: owns one site's physical capacity,
// reports availability to its GRM, and fulfills reservations.
#pragma once

#include <unordered_map>
#include <vector>

#include "rms/bus.h"
#include "rms/messages.h"

namespace agora::rms {

class Lrm {
 public:
  /// `capacity[r]` is the site's physical capacity for resource r.
  /// `report_latency` models the LRM -> GRM network delay.
  Lrm(MessageBus& bus, std::vector<double> capacity, double report_latency = 0.0);

  EndpointId endpoint() const { return endpoint_; }
  std::size_t site_index() const { return site_; }

  /// Bind to the GRM and announce the initial availability. `site_index`
  /// is this LRM's principal index in the GRM's agreement system.
  void attach(EndpointId grm, std::size_t site_index);

  /// Currently unreserved capacity per resource.
  const std::vector<double>& available() const { return available_; }
  std::size_t active_reservations() const { return reservations_.size(); }

  /// Grow/shrink physical capacity at runtime (reports the change).
  void adjust_capacity(std::size_t resource, double delta);

 private:
  void handle(const Envelope& env);
  void report();

  MessageBus& bus_;
  EndpointId endpoint_;
  EndpointId grm_ = 0;
  std::size_t site_ = 0;
  bool attached_ = false;
  double report_latency_;
  std::vector<double> capacity_;
  std::vector<double> available_;
  std::unordered_map<std::uint64_t, std::vector<double>> reservations_;
};

}  // namespace agora::rms
