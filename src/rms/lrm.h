// lrm.h -- Local Resource Manager: owns one site's physical capacity,
// reports availability to its GRM, and fulfills reservations.
//
// Hardening against an unreliable bus: reports carry sequence numbers,
// reserve commands are idempotent (a retried command is re-acked, never
// re-applied), released request ids are remembered so late duplicates
// cannot resurrect a reservation, and a restarted LRM resyncs its GRM
// (re-announcing availability and outstanding holds, releasing holds
// whose expiry was lost while the site was down). When the GRM is
// unreachable an LRM can also serve AllocationRequests directly under
// local-only admission: grant strictly from its own free capacity.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rms/bus.h"
#include "rms/messages.h"

namespace agora::rms {

class Lrm {
 public:
  /// `capacity[r]` is the site's physical capacity for resource r.
  /// `report_latency` models the LRM -> GRM network delay.
  Lrm(MessageBus& bus, std::vector<double> capacity, double report_latency = 0.0);

  EndpointId endpoint() const { return endpoint_; }
  std::size_t site_index() const { return site_; }

  /// Bind to the GRM and announce the initial availability. `site_index`
  /// is this LRM's principal index in the GRM's agreement system. Also
  /// registers the crash-recovery handler: if the fault plan restarts
  /// this endpoint, it resyncs the GRM automatically. Under replication
  /// `grm` is the site's ingress replica (ReplicatedGrm::ingress); the LRM
  /// subsequently follows whichever replica sends it reserve commands, so
  /// reports survive an ingress-replica crash.
  void attach(EndpointId grm, std::size_t site_index);

  /// Re-announce availability and outstanding reservations to the GRM
  /// (sent automatically after a crash-window restart). Holds whose
  /// expiry passed while the site was down are released first, and
  /// pending expiries are re-scheduled (the in-flight release may have
  /// been lost); duplicate releases are idempotent.
  void resync();

  /// Currently unreserved capacity per resource.
  const std::vector<double>& available() const { return available_; }
  std::size_t active_reservations() const { return reservations_.size(); }

  /// Grow/shrink physical capacity at runtime (reports the change).
  void adjust_capacity(std::size_t resource, double delta);

  /// Robustness statistics.
  std::uint64_t duplicate_commands() const { return duplicate_commands_; }
  std::uint64_t local_admissions() const { return local_admissions_; }
  std::uint64_t local_denials() const { return local_denials_; }

 private:
  struct Hold {
    std::vector<double> amounts;
    double expires_at = 0.0;  ///< 0 = open-ended
  };

  void handle(const Envelope& env);
  void serve_local(const AllocationRequest& req, EndpointId reply_to);
  /// `ack_to` is the endpoint that issued the command: the attached GRM, or
  /// under replication whichever replica is currently leading.
  void reserve(const ReserveCommand& cmd, EndpointId ack_to);
  void release(std::uint64_t request_id);
  void report();

  MessageBus& bus_;
  EndpointId endpoint_;
  EndpointId grm_ = 0;
  std::size_t site_ = 0;
  bool attached_ = false;
  double report_latency_;
  std::vector<double> capacity_;
  std::vector<double> available_;
  std::unordered_map<std::uint64_t, Hold> reservations_;
  /// Ids already released: a late duplicate ReserveCommand for one of
  /// these must not re-take capacity (it is acked as already done).
  std::unordered_set<std::uint64_t> released_;
  std::uint64_t report_seq_ = 0;
  std::uint64_t duplicate_commands_ = 0;
  std::uint64_t local_admissions_ = 0;
  std::uint64_t local_denials_ = 0;
};

}  // namespace agora::rms
