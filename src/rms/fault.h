// fault.h -- deterministic fault injection for the rms message bus.
//
// A FaultPlan describes everything that can go wrong on the simulated
// network: per-link drop/duplicate probabilities and latency jitter
// (which reorders), scheduled partitions, and endpoint crash/restart
// windows. All randomness is drawn from a single seeded PCG32 stream at
// post time, so a given (plan, workload) pair replays byte-identically --
// the chaos tests depend on that.
//
// A default-constructed FaultPlan is inert: MessageBus treats it as "no
// fault layer" and takes the exact same code path as the seed bus.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace agora::rms {

using EndpointId = std::size_t;

/// What a single directed link does to messages. Self-messages (timers,
/// an LRM's own release schedule) model local clocks, not the network,
/// and are never subject to link faults.
struct LinkFaults {
  double drop = 0.0;       ///< probability a message is silently lost
  double duplicate = 0.0;  ///< probability a second copy is also delivered
  double jitter = 0.0;     ///< extra latency uniform in [0, jitter) -- reorders

  bool any() const { return drop > 0.0 || duplicate > 0.0 || jitter > 0.0; }
};

/// During [start, end) the endpoints in `group` cannot exchange messages
/// with any endpoint outside the group (messages crossing the cut at
/// delivery time are lost).
struct Partition {
  double start = 0.0;
  double end = 0.0;
  std::vector<EndpointId> group;
};

/// Endpoint `endpoint` is down during [start, end): messages addressed to
/// it (and posted by it) are lost. At `end` the bus fires the endpoint's
/// restart handler, which is how an LRM re-announces its state.
struct CrashWindow {
  EndpointId endpoint = 0;
  double start = 0.0;
  double end = 0.0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  LinkFaults default_link;
  /// Per-(from, to) overrides; absent links use `default_link`.
  std::map<std::pair<EndpointId, EndpointId>, LinkFaults> per_link;
  std::vector<Partition> partitions;
  std::vector<CrashWindow> crashes;

  /// True when any fault is configured (a default plan is inert).
  bool active() const;
  /// The fault profile of the directed link from -> to.
  const LinkFaults& link(EndpointId from, EndpointId to) const;
  /// Is `e` inside one of its crash windows at time `t`?
  bool crashed(EndpointId e, double t) const;
  /// Does a partition separate `a` from `b` at time `t`?
  bool severed(EndpointId a, EndpointId b, double t) const;
  /// Throws PreconditionError on malformed probabilities/windows.
  void validate() const;
};

}  // namespace agora::rms
