#include "rms/replica/raft.h"

#include <algorithm>
#include <string>

namespace agora::rms::replica {

namespace {

StateMachineOptions sm_options(const GrmOptions& g) {
  StateMachineOptions o;
  o.staleness_ttl = g.staleness_ttl;
  o.decided_cache_capacity = g.decided_cache_capacity;
  o.engine_threads = g.engine_threads;
  o.sink = g.sink;
  return o;
}

ReserveEmitterOptions emitter_options(const GrmOptions& g, double send_latency) {
  ReserveEmitterOptions o;
  o.attempts = g.reserve_attempts;
  o.backoff = g.reserve_backoff;
  o.backoff_cap = g.reserve_backoff_cap;
  o.jitter = g.reserve_jitter;
  o.jitter_seed = g.reserve_jitter_seed;
  o.send_latency = send_latency;
  // Raft timers use the even tokens (next_raft_token); the emitter owns the
  // odd ones, so one endpoint can demultiplex both timer streams.
  o.first_token = 1;
  o.token_stride = 2;
  o.sink = g.sink;
  return o;
}

}  // namespace

RaftNode::RaftNode(MessageBus& bus, std::size_t id,
                   std::vector<agree::AgreementSystem> systems, alloc::AllocatorOptions opts,
                   double decision_latency, GrmOptions grm_opts)
    : bus_(bus),
      id_(id),
      decision_latency_(decision_latency),
      grm_opts_(grm_opts),
      rep_(grm_opts.replication),
      sm_(std::move(systems), opts, sm_options(grm_opts)),
      emitter_(bus, emitter_options(grm_opts, decision_latency)),
      // Distinct seeded stream per replica: elections are randomized enough
      // to rarely split, yet every run replays bit-identically.
      rng_(rep_.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)), 2 * id + 1) {
  AGORA_REQUIRE(rep_.election_timeout_min > 0.0 &&
                    rep_.election_timeout_max > rep_.election_timeout_min,
                "election timeout window must be positive and non-empty");
  AGORA_REQUIRE(rep_.heartbeat_interval > 0.0 &&
                    rep_.heartbeat_interval < rep_.election_timeout_min,
                "heartbeat interval must be positive and below the election timeout");
  AGORA_REQUIRE(rep_.latency >= 0.0, "replication latency must be non-negative");
  AGORA_REQUIRE(rep_.snapshot_threshold >= 1, "snapshot threshold must be positive");
  endpoint_ = bus_.add_endpoint([this](const Envelope& env) { handle(env); });
  bus_.set_restart_handler(endpoint_, [this] { on_restart(); });
  sm_.set_actor(static_cast<std::uint32_t>(endpoint_));
  lrm_endpoints_.assign(sm_.num_sites(), 0);
  emitter_.bind(endpoint_, &lrm_endpoints_);
  obs_elections_ = &grm_opts_.sink.counter("rms.replica.elections");
  obs_commits_ = &grm_opts_.sink.counter("rms.replica.commits");
  obs_redirects_ = &grm_opts_.sink.counter("rms.replica.redirects");
  obs_term_ = &grm_opts_.sink.gauge("rms.replica." + std::to_string(id_) + ".term");
  obs_commit_index_ =
      &grm_opts_.sink.gauge("rms.replica." + std::to_string(id_) + ".commit_index");
}

void RaftNode::connect(std::vector<EndpointId> group) {
  AGORA_REQUIRE(id_ < group.size() && group[id_] == endpoint_,
                "group must be index-aligned with replica ids");
  group_ = std::move(group);
  votes_.assign(group_.size(), false);
  next_.assign(group_.size(), 1);
  match_.assign(group_.size(), 0);
}

void RaftNode::register_lrm(std::size_t site, EndpointId lrm) {
  sm_.register_site(site);  // validates the index
  lrm_endpoints_[site] = lrm;
}

void RaftNode::start() {
  AGORA_REQUIRE(!group_.empty(), "connect() the replica group before start()");
  stopped_ = false;
  election_deadline_ = bus_.now() + draw_timeout();
  ensure_election_timer();
}

void RaftNode::stop() { stopped_ = true; }

// ------------------------------------------------------------- dispatch ---

void RaftNode::handle(const Envelope& env) {
  if (const auto* t = std::get_if<Timer>(&env.payload)) {
    if (!emitter_.on_timer(t->token)) on_timer(t->token);
    return;
  }
  if (const auto* rv = std::get_if<RequestVote>(&env.payload)) return on_request_vote(*rv);
  if (const auto* vr = std::get_if<VoteReply>(&env.payload)) return on_vote_reply(*vr);
  if (const auto* ae = std::get_if<AppendEntries>(&env.payload)) return on_append(*ae);
  if (const auto* ar = std::get_if<AppendReply>(&env.payload)) return on_append_reply(*ar);
  if (const auto* is = std::get_if<InstallSnapshot>(&env.payload))
    return on_install_snapshot(*is);
  if (const auto* sr = std::get_if<SnapshotReply>(&env.payload)) return on_snapshot_reply(*sr);
  if (const auto* req = std::get_if<AllocationRequest>(&env.payload))
    return on_client_request(*req, env.from);
  if (const auto* rep = std::get_if<AvailabilityReport>(&env.payload))
    return on_ingress(LogCommand{*rep}, env.from);
  if (const auto* rs = std::get_if<LrmResync>(&env.payload))
    return on_ingress(LogCommand{*rs}, env.from);
  if (const auto* upd = std::get_if<AgreementUpdate>(&env.payload))
    return on_ingress(LogCommand{*upd}, env.from);
  if (const auto* ack = std::get_if<Ack>(&env.payload)) {
    emitter_.on_ack(ack->request_id, ack->site);
    return;
  }
  // ReleaseNotice etc.: informational; availability arrives via reports.
}

// --------------------------------------------------------------- timers ---

double RaftNode::draw_timeout() {
  return rng_.uniform(rep_.election_timeout_min, rep_.election_timeout_max);
}

void RaftNode::ensure_election_timer() {
  if (stopped_ || election_armed_) return;
  schedule_election_check(std::max(0.0, election_deadline_ - bus_.now()));
}

void RaftNode::schedule_election_check(double delay) {
  election_token_ = next_raft_token();
  election_armed_ = true;
  bus_.post(endpoint_, endpoint_, Timer{election_token_}, delay);
}

void RaftNode::arm_heartbeat() {
  if (stopped_) return;
  heartbeat_token_ = next_raft_token();
  bus_.post(endpoint_, endpoint_, Timer{heartbeat_token_}, rep_.heartbeat_interval);
}

void RaftNode::on_timer(std::uint64_t token) {
  if (token == heartbeat_token_) return on_heartbeat_timeout();
  if (token != election_token_) return;  // stale chain (restart or re-arm)
  election_armed_ = false;
  if (stopped_ || role_ == Role::Leader) return;
  if (bus_.now() + 1e-12 >= election_deadline_) return on_election_timeout();
  ensure_election_timer();  // deadline was pushed back by a heartbeat
}

void RaftNode::on_heartbeat_timeout() {
  if (stopped_ || role_ != Role::Leader) return;
  broadcast_append();
  arm_heartbeat();
}

// ------------------------------------------------------------ elections ---

void RaftNode::on_election_timeout() { start_election(); }

void RaftNode::start_election() {
  ++term_;
  role_ = Role::Candidate;
  voted_for_ = id_;
  leader_.reset();
  votes_.assign(group_.size(), false);
  votes_[id_] = true;
  ++stats_.elections_started;
  obs_elections_->inc();
  obs_term_->set(static_cast<double>(term_));
  election_deadline_ = bus_.now() + draw_timeout();
  ensure_election_timer();
  RequestVote rv;
  rv.term = term_;
  rv.candidate = id_;
  rv.last_log_index = last_index();
  rv.last_log_term = last_term();
  for (std::size_t p = 0; p < group_.size(); ++p)
    if (p != id_) bus_.post(endpoint_, group_[p], rv, rep_.latency);
  if (1 >= quorum()) become_leader();  // single-replica group
}

void RaftNode::on_request_vote(const RequestVote& rv) {
  if (rv.term > term_) step_down(rv.term);
  VoteReply reply;
  reply.term = term_;
  reply.voter = id_;
  // Election safety: one vote per term, and only for candidates whose log
  // is at least as up-to-date as ours (so a leader always holds every
  // committed entry).
  const bool up_to_date = rv.last_log_term > last_term() ||
                          (rv.last_log_term == last_term() && rv.last_log_index >= last_index());
  reply.granted = rv.term == term_ && role_ == Role::Follower && up_to_date &&
                  (!voted_for_.has_value() || *voted_for_ == rv.candidate);
  if (reply.granted) {
    voted_for_ = rv.candidate;
    ++stats_.votes_granted;
    election_deadline_ = bus_.now() + draw_timeout();
    ensure_election_timer();
  }
  bus_.post(endpoint_, group_[rv.candidate], reply, rep_.latency);
}

void RaftNode::on_vote_reply(const VoteReply& vr) {
  if (vr.term > term_) return step_down(vr.term);
  if (role_ != Role::Candidate || vr.term != term_ || !vr.granted) return;
  votes_.at(vr.voter) = true;
  const auto count = static_cast<std::size_t>(std::count(votes_.begin(), votes_.end(), true));
  if (count >= quorum()) become_leader();
}

void RaftNode::become_leader() {
  role_ = Role::Leader;
  leader_ = id_;
  ++stats_.elections_won;
  grm_opts_.sink.event(bus_.now(), obs::EventKind::LeaderElected,
                       static_cast<std::uint32_t>(id_), 0, static_cast<double>(term_));
  next_.assign(group_.size(), last_index() + 1);
  match_.assign(group_.size(), 0);
  match_[id_] = last_index();
  // The classic no-op of the new term: once it commits, every entry from
  // earlier terms beneath it is committed too (a leader only ever counts
  // replicas for entries of its own term).
  append_command(LogCommand{RaftNoop{}}, endpoint_);
  arm_heartbeat();
}

void RaftNode::step_down(std::uint64_t new_term) {
  if (new_term > term_) {
    term_ = new_term;
    voted_for_.reset();
    obs_term_->set(static_cast<double>(term_));
  }
  if (role_ == Role::Leader) {
    // A deposed leader must stop retrying effects it emitted while in
    // charge; the idempotent LRM protocol absorbs anything already sent.
    emitter_.abandon_all();
  }
  role_ = Role::Follower;
  leader_.reset();
  election_deadline_ = bus_.now() + draw_timeout();
  ensure_election_timer();
}

// ------------------------------------------------------------------ log ---

std::uint64_t RaftNode::entry_term(std::uint64_t i) const {
  if (i == snap_index_) return snap_term_;
  AGORA_REQUIRE(i > snap_index_ && i <= last_index(), "log index out of range");
  return log_[i - snap_index_ - 1].term;
}

const LogEntry& RaftNode::entry(std::uint64_t i) const {
  AGORA_REQUIRE(i > snap_index_ && i <= last_index(), "log index out of range");
  return log_[i - snap_index_ - 1];
}

void RaftNode::append_command(LogCommand cmd, EndpointId origin) {
  AGORA_REQUIRE(role_ == Role::Leader, "only a leader appends commands");
  LogEntry e;
  e.term = term_;
  e.index = last_index() + 1;
  e.time = bus_.now();
  e.origin = origin;
  e.command = std::move(cmd);
  log_.push_back(std::move(e));
  ++stats_.entries_appended;
  match_[id_] = last_index();
  broadcast_append();
  advance_commit();  // a single-replica group commits immediately
}

void RaftNode::broadcast_append() {
  for (std::size_t p = 0; p < group_.size(); ++p)
    if (p != id_) send_append(p);
}

void RaftNode::send_append(std::size_t peer) {
  if (next_[peer] <= snap_index_) {
    // The follower's next entry was compacted away: ship the snapshot.
    InstallSnapshot is;
    is.term = term_;
    is.leader = id_;
    is.last_index = snap_index_;
    is.last_term = snap_term_;
    is.state = snap_blob_;
    AGORA_INVARIANT(is.state != nullptr, "compacted log without a snapshot");
    bus_.post(endpoint_, group_[peer], std::move(is), rep_.latency);
    ++stats_.appends_sent;
    return;
  }
  AppendEntries ae;
  ae.term = term_;
  ae.leader = id_;
  ae.prev_index = next_[peer] - 1;
  ae.prev_term = entry_term(ae.prev_index);
  for (std::uint64_t i = next_[peer]; i <= last_index(); ++i) ae.entries.push_back(entry(i));
  ae.commit = commit_;
  bus_.post(endpoint_, group_[peer], std::move(ae), rep_.latency);
  ++stats_.appends_sent;
}

void RaftNode::on_append(const AppendEntries& ae) {
  AppendReply reply;
  reply.follower = id_;
  if (ae.term < term_) {
    reply.term = term_;
    reply.success = false;
    bus_.post(endpoint_, group_[ae.leader], reply, rep_.latency);
    return;
  }
  if (ae.term > term_ || role_ != Role::Follower) step_down(ae.term);
  leader_ = ae.leader;
  election_deadline_ = bus_.now() + draw_timeout();
  ensure_election_timer();
  reply.term = term_;

  // Consistency check on the entry preceding the batch.
  if (ae.prev_index > last_index() ||
      (ae.prev_index >= snap_index_ && entry_term(ae.prev_index) != ae.prev_term)) {
    reply.success = false;
    // Hint where to back up to: past our log end, or to our snapshot
    // boundary when the conflict sits below what we still hold.
    reply.hint_index = std::min(ae.prev_index, last_index() + 1);
    if (reply.hint_index <= snap_index_) reply.hint_index = snap_index_ + 1;
    bus_.post(endpoint_, group_[ae.leader], reply, rep_.latency);
    return;
  }

  std::uint64_t match = ae.prev_index;
  for (const LogEntry& e : ae.entries) {
    if (e.index <= snap_index_) {
      match = std::max(match, e.index);
      continue;  // already folded into our snapshot (committed, identical)
    }
    if (e.index <= last_index()) {
      if (entry_term(e.index) == e.term) {
        match = e.index;
        continue;  // already have it
      }
      truncate_suffix(e.index);  // conflicting suffix from a dead leader
    }
    AGORA_INVARIANT(e.index == last_index() + 1, "append entries must be contiguous");
    log_.push_back(e);
    ++stats_.entries_appended;
    match = e.index;
  }
  reply.success = true;
  reply.match_index = match;
  if (ae.commit > commit_) {
    commit_ = std::min(ae.commit, last_index());
    obs_commit_index_->set(static_cast<double>(commit_));
    apply_committed();
  }
  bus_.post(endpoint_, group_[ae.leader], reply, rep_.latency);
}

void RaftNode::on_append_reply(const AppendReply& ar) {
  if (ar.term > term_) return step_down(ar.term);
  if (role_ != Role::Leader || ar.term != term_) return;
  if (ar.success) {
    if (ar.match_index > match_[ar.follower]) {
      match_[ar.follower] = ar.match_index;
      next_[ar.follower] = ar.match_index + 1;
      const std::uint64_t before = commit_;
      advance_commit();
      // Push the new commit index out immediately (instead of waiting a
      // heartbeat) so a drained bus leaves every live replica fully applied.
      if (commit_ > before) broadcast_append();
    }
    if (next_[ar.follower] <= last_index()) send_append(ar.follower);
    return;
  }
  // Log mismatch: back up (guided by the follower's hint) and retry.
  const std::uint64_t hint = std::max<std::uint64_t>(ar.hint_index, 1);
  next_[ar.follower] = std::min(std::max<std::uint64_t>(next_[ar.follower], 2) - 1, hint);
  send_append(ar.follower);
}

void RaftNode::advance_commit() {
  for (std::uint64_t n = last_index(); n > commit_; --n) {
    if (entry_term(n) != term_) break;  // only entries of the current term count
    std::size_t replicated = 0;
    for (std::size_t p = 0; p < group_.size(); ++p)
      if (match_[p] >= n) ++replicated;
    if (replicated >= quorum()) {
      commit_ = n;
      obs_commit_index_->set(static_cast<double>(commit_));
      apply_committed();
      break;
    }
  }
}

void RaftNode::truncate_suffix(std::uint64_t from_index) {
  AGORA_INVARIANT(from_index > commit_, "cannot truncate committed entries");
  AGORA_INVARIANT(from_index > snap_index_, "cannot truncate the snapshot");
  const std::uint64_t dropped = last_index() - from_index + 1;
  log_.resize(from_index - snap_index_ - 1);
  ++stats_.suffix_truncations;
  grm_opts_.sink.event(bus_.now(), obs::EventKind::LogTruncate,
                       static_cast<std::uint32_t>(id_), 0, static_cast<double>(from_index),
                       static_cast<double>(dropped));
}

// ---------------------------------------------------------------- apply ---

void RaftNode::apply_committed() {
  while (applied_ < commit_) {
    apply_entry(entry(applied_ + 1));
    ++applied_;
    obs_commits_->inc();
  }
  maybe_compact();
}

void RaftNode::apply_entry(const LogEntry& e) {
  // Entries apply with the leader's append-time clock, so staleness masking
  // is bit-identical on every replica regardless of when it catches up.
  if (std::holds_alternative<RaftNoop>(e.command)) return;
  if (const auto* rep = std::get_if<AvailabilityReport>(&e.command)) {
    sm_.apply_report(*rep, e.time);
    return;
  }
  if (const auto* rs = std::get_if<LrmResync>(&e.command)) {
    sm_.apply_resync(*rs, e.time);
    return;
  }
  if (const auto* upd = std::get_if<AgreementUpdate>(&e.command)) {
    sm_.apply_update(upd->resource, upd->from, upd->to, upd->share);
    return;
  }
  const auto& req = std::get<AllocationRequest>(e.command);
  in_flight_.erase(req.request_id);
  GrmStateMachine::Decision d = sm_.decide(req, e.time, /*record_denial=*/true);
  // Effects leave only the node that is leader at apply time: a deposed or
  // partitioned-away leader cannot commit, so it can never emit a grant a
  // majority did not agree to. (If leadership changes between commit and
  // the client's retry, the new leader answers from the replicated decided
  // cache -- same reply, no second grant.)
  if (role_ != Role::Leader) return;
  if (d.kind == GrmStateMachine::Decision::Kind::Granted)
    for (auto& [site, cmd] : d.reserves) emitter_.send(req.request_id, site, std::move(cmd));
  bus_.post(endpoint_, e.origin, std::move(d.reply), decision_latency_);
}

void RaftNode::maybe_compact() {
  if (applied_ - snap_index_ < rep_.snapshot_threshold) return;
  snap_blob_ = std::make_shared<const GrmSnapshot>(sm_.snapshot());
  snap_term_ = entry_term(applied_);
  log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(applied_ - snap_index_));
  snap_index_ = applied_;
  ++stats_.compactions;
}

void RaftNode::on_install_snapshot(const InstallSnapshot& is) {
  if (is.term < term_) {
    bus_.post(endpoint_, group_[is.leader], SnapshotReply{term_, id_, applied_}, rep_.latency);
    return;
  }
  if (is.term > term_ || role_ != Role::Follower) step_down(is.term);
  leader_ = is.leader;
  election_deadline_ = bus_.now() + draw_timeout();
  ensure_election_timer();
  if (is.last_index > applied_) {
    AGORA_INVARIANT(is.state != nullptr, "snapshot message without state");
    sm_.restore(*is.state);
    // The snapshot subsumes our whole log (everything in it is committed).
    log_.clear();
    snap_index_ = is.last_index;
    snap_term_ = is.last_term;
    snap_blob_ = is.state;
    commit_ = std::max(commit_, is.last_index);
    applied_ = is.last_index;
    obs_commit_index_->set(static_cast<double>(commit_));
    ++stats_.snapshots_installed;
    grm_opts_.sink.event(bus_.now(), obs::EventKind::ReplicaSnapshot,
                         static_cast<std::uint32_t>(id_), static_cast<std::uint32_t>(is.leader),
                         static_cast<double>(is.last_index));
  }
  bus_.post(endpoint_, group_[is.leader], SnapshotReply{term_, id_, applied_}, rep_.latency);
}

void RaftNode::on_snapshot_reply(const SnapshotReply& sr) {
  if (sr.term > term_) return step_down(sr.term);
  if (role_ != Role::Leader || sr.term != term_) return;
  if (sr.match_index > match_[sr.follower]) {
    match_[sr.follower] = sr.match_index;
    next_[sr.follower] = sr.match_index + 1;
  } else {
    next_[sr.follower] = std::max(next_[sr.follower], sr.match_index + 1);
  }
  if (next_[sr.follower] <= last_index()) send_append(sr.follower);
}

// -------------------------------------------------------------- ingress ---

void RaftNode::on_client_request(const AllocationRequest& req, EndpointId from) {
  if (role_ != Role::Leader) {
    NotLeader nl;
    nl.request_id = req.request_id;
    nl.term = term_;
    nl.leader_known = leader_.has_value() && *leader_ != id_;
    nl.leader = nl.leader_known ? group_[*leader_] : 0;
    ++stats_.redirects;
    obs_redirects_->inc();
    bus_.post(endpoint_, from, nl, decision_latency_);
    return;
  }
  // A malformed request must never enter the log: it would trip an
  // invariant at apply time on every replica. Deny it at the edge.
  if (const auto reason = sm_.invalid_reason(req)) {
    AllocationReply reply;
    reply.request_id = req.request_id;
    reply.granted = false;
    reply.reason = *reason;
    bus_.post(endpoint_, from, std::move(reply), decision_latency_);
    return;
  }
  if (const AllocationReply* done = sm_.cached(req.request_id)) {
    sm_.note_duplicate();
    bus_.post(endpoint_, from, *done, decision_latency_);
    return;
  }
  if (in_flight_.count(req.request_id) != 0) {
    // Already appended, not yet committed: the reply follows at apply time.
    sm_.note_duplicate();
    return;
  }
  in_flight_.insert(req.request_id);
  append_command(LogCommand{req}, from);
}

void RaftNode::on_ingress(LogCommand cmd, EndpointId from) {
  if (role_ == Role::Leader) {
    append_command(std::move(cmd), from);
    return;
  }
  // Availability is self-healing state (the next report refreshes it), so
  // non-leaders forward on a best-effort basis and drop when the leader is
  // unknown -- no queueing, no acknowledgment.
  if (leader_.has_value() && *leader_ != id_) {
    ++stats_.forwarded_ingress;
    std::visit([&](auto& c) {
      if constexpr (!std::is_same_v<std::decay_t<decltype(c)>, RaftNoop>)
        bus_.post(endpoint_, group_[*leader_], std::move(c), rep_.latency);
    }, cmd);
    return;
  }
  ++stats_.dropped_ingress;
}

// -------------------------------------------------------------- restart ---

void RaftNode::on_restart() {
  // Term, vote, log and snapshot survive (the in-memory object models the
  // durable store; the applied state machine is equivalent to a node that
  // snapshots every applied entry). Volatile leadership state does not.
  ++stats_.restarts;
  role_ = Role::Follower;
  leader_.reset();
  votes_.assign(group_.size(), false);
  in_flight_.clear();
  emitter_.abandon_all();
  // Every in-flight timer chain died with the crash (or is now stale):
  // re-arm from scratch with fresh tokens.
  election_armed_ = false;
  heartbeat_token_ = 0;
  if (stopped_) return;
  election_deadline_ = bus_.now() + draw_timeout();
  ensure_election_timer();
}

}  // namespace agora::rms::replica
