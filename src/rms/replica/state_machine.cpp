#include "rms/replica/state_machine.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "engine/engine.h"

namespace agora::rms {

std::unique_ptr<alloc::AllocatorBase> GrmStateMachine::make_allocator(
    agree::AgreementSystem sys) const {
  if (sm_opts_.engine_threads >= 1) {
    engine::EngineOptions eng;
    eng.threads = sm_opts_.engine_threads;
    eng.alloc = opts_;
    eng.sink = opts_.sink;
    return std::make_unique<engine::EnforcementEngine>(std::move(sys), std::move(eng));
  }
  return std::make_unique<alloc::Allocator>(std::move(sys), opts_);
}

void GrmStateMachine::rebuild_allocators(std::vector<agree::AgreementSystem> systems) {
  allocators_.clear();
  allocators_.reserve(systems.size());
  for (auto& s : systems) allocators_.push_back(make_allocator(std::move(s)));
}

GrmStateMachine::GrmStateMachine(std::vector<agree::AgreementSystem> systems,
                                 alloc::AllocatorOptions opts, StateMachineOptions sm_opts)
    : opts_(opts), sm_opts_(sm_opts) {
  AGORA_REQUIRE(!systems.empty(), "GRM needs at least one resource system");
  AGORA_REQUIRE(sm_opts_.staleness_ttl > 0.0, "staleness TTL must be positive");
  const std::size_t n = systems[0].size();
  for (const auto& s : systems)
    AGORA_REQUIRE(s.size() == n, "all resource systems must cover the same sites");
  obs_decisions_ = &sm_opts_.sink.counter("rms.grm.decisions");
  obs_grants_ = &sm_opts_.sink.counter("rms.grm.grants");
  obs_stale_masked_ = &sm_opts_.sink.counter("rms.grm.stale_masked");
  obs_duplicate_requests_ = &sm_opts_.sink.counter("rms.grm.duplicate_requests");
  obs_stale_reports_ = &sm_opts_.sink.counter("rms.grm.stale_reports");
  obs_resyncs_ = &sm_opts_.sink.counter("rms.grm.resyncs");
  obs_decided_evictions_ = &sm_opts_.sink.counter("rms.grm.decided_evictions");
  known_.reserve(systems.size());
  for (const auto& s : systems) known_.emplace_back(s.capacity);  // declared capacities
  rebuild_allocators(std::move(systems));
  registered_.assign(n, false);
  reported_.assign(n, false);
  report_time_.assign(n, 0.0);
  report_seq_.assign(n, 0);
}

void GrmStateMachine::register_site(std::size_t site) {
  AGORA_REQUIRE(site < registered_.size(), "unknown site");
  registered_[site] = true;
}

void GrmStateMachine::set_scope(const std::vector<std::size_t>& sites) {
  scope_.assign(registered_.size(), false);
  for (std::size_t s : sites) {
    AGORA_REQUIRE(s < scope_.size(), "scope site out of range");
    scope_[s] = true;
  }
}

void GrmStateMachine::apply_update(std::size_t resource, std::size_t from, std::size_t to,
                                   double share) {
  AGORA_REQUIRE(resource < allocators_.size(), "unknown resource");
  // Rebuild the allocator with the updated matrix (agreement changes are
  // rare control-plane events; the closure recomputation is acceptable).
  agree::AgreementSystem sys = allocators_[resource]->system();
  AGORA_REQUIRE(from < sys.size() && to < sys.size() && from != to, "bad agreement endpoints");
  AGORA_REQUIRE(share >= 0.0, "share must be non-negative");
  sys.relative(from, to) = share;
  allocators_[resource] = make_allocator(std::move(sys));
}

bool GrmStateMachine::apply_report(const AvailabilityReport& rep, double now) {
  AGORA_REQUIRE(rep.available.size() == allocators_.size(),
                "availability report resource count mismatch");
  AGORA_REQUIRE(rep.lrm < registered_.size(), "availability report from unknown site");
  // Sequenced reports deduplicate and reject reordered stale data; an
  // unsequenced report (seq 0, e.g. hand-posted in tests) always lands.
  if (rep.report_seq != 0 && rep.report_seq <= report_seq_[rep.lrm]) {
    ++stale_reports_;
    obs_stale_reports_->inc();
    return false;
  }
  report_seq_[rep.lrm] = rep.report_seq;
  reported_[rep.lrm] = true;
  report_time_[rep.lrm] = now;
  for (std::size_t r = 0; r < allocators_.size(); ++r) known_[r][rep.lrm] = rep.available[r];
  return true;
}

void GrmStateMachine::apply_resync(const LrmResync& rs, double now) {
  AGORA_REQUIRE(rs.available.size() == allocators_.size(), "resync resource count mismatch");
  AGORA_REQUIRE(rs.lrm < registered_.size(), "resync from unknown site");
  ++resyncs_;
  obs_resyncs_->inc();
  sm_opts_.sink.event(now, obs::EventKind::GrmResync, actor_,
                      static_cast<std::uint32_t>(rs.lrm));
  reported_[rs.lrm] = true;
  report_time_[rs.lrm] = now;
  for (std::size_t r = 0; r < allocators_.size(); ++r) known_[r][rs.lrm] = rs.available[r];
}

double GrmStateMachine::known_available(std::size_t site, std::size_t resource) const {
  AGORA_REQUIRE(resource < known_.size() && site < known_[resource].size(),
                "unknown site/resource");
  if (!registered_[site] || !reported_[site]) {
    ++unknown_queries_;
    return 0.0;
  }
  return known_[resource][site];
}

const AllocationReply* GrmStateMachine::cached(std::uint64_t request_id) const {
  const auto it = decided_.find(request_id);
  return it == decided_.end() ? nullptr : &it->second;
}

void GrmStateMachine::note_duplicate() {
  ++duplicate_requests_;
  obs_duplicate_requests_->inc();
}

void GrmStateMachine::record(std::uint64_t request_id, const AllocationReply& reply) {
  const auto [it, fresh] = decided_.try_emplace(request_id, reply);
  if (!fresh) {
    it->second = reply;
    return;
  }
  decided_order_.push_back(request_id);
  if (sm_opts_.decided_cache_capacity == 0) return;
  while (decided_.size() > sm_opts_.decided_cache_capacity) {
    decided_.erase(decided_order_.front());
    decided_order_.pop_front();
    ++decided_evictions_;
    obs_decided_evictions_->inc();
  }
}

std::optional<std::string> GrmStateMachine::invalid_reason(const AllocationRequest& req) const {
  if (req.amounts.size() != allocators_.size())
    return "invalid request: must name an amount per resource";
  if (req.principal >= registered_.size()) return "invalid request: unknown principal";
  return std::nullopt;
}

GrmStateMachine::Decision GrmStateMachine::decide(const AllocationRequest& req, double now,
                                                  bool record_denial) {
  Decision out;
  if (const AllocationReply* done = cached(req.request_id)) {
    note_duplicate();
    out.kind = Decision::Kind::Duplicate;
    out.reply = *done;
    return out;
  }

  ++decisions_;
  obs_decisions_->inc();
  AGORA_REQUIRE(req.amounts.size() == allocators_.size(),
                "request must name an amount per resource");
  AGORA_REQUIRE(req.principal < registered_.size(), "unknown principal");

  // Refresh allocators with the latest availability, masking out-of-scope
  // sites (a child GRM cannot spend capacity it does not manage) and --
  // graceful degradation -- sites whose availability we cannot trust:
  // never registered, or (under a finite staleness TTL) never reported or
  // last reported too long ago. Such sites contribute zero capacity, which
  // shrinks the LP's capacity bounds instead of allocating phantom
  // resources or tripping invariants downstream.
  const bool ttl_active = std::isfinite(sm_opts_.staleness_ttl);
  const std::size_t n = registered_.size();
  std::vector<bool> masked(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    if (!registered_[s]) masked[s] = true;
    else if (ttl_active && (!reported_[s] || now - report_time_[s] > sm_opts_.staleness_ttl))
      masked[s] = true;
    if (masked[s]) {
      ++stale_masked_;
      obs_stale_masked_->inc();
    }
  }
  std::vector<std::vector<double>> caps(allocators_.size());
  for (std::size_t r = 0; r < allocators_.size(); ++r) {
    caps[r] = known_[r];
    for (std::size_t s = 0; s < caps[r].size(); ++s)
      if (masked[s] || (!scope_.empty() && !scope_[s])) caps[r][s] = 0.0;
    allocators_[r]->set_capacities(std::span<const double>(caps[r]));
  }

  // Solve the per-resource LPs.
  std::vector<alloc::AllocationPlan> plans(allocators_.size());
  bool ok = true;
  for (std::size_t r = 0; r < allocators_.size(); ++r) {
    plans[r] = allocators_[r]->allocate(req.principal, req.amounts[r]);
    ok = ok && plans[r].satisfied();
  }

  if (!ok) {
    if (!record_denial) {
      out.kind = Decision::Kind::Unsatisfied;
      return out;
    }
    out.kind = Decision::Kind::Denied;
    out.reply.request_id = req.request_id;
    out.reply.granted = false;
    out.reply.reason = "insufficient capacity under agreements";
    record(req.request_id, out.reply);
    return out;
  }

  // Commit: build reserve commands for every contributing LRM and update
  // our book-keeping. The caller emits them (and the reply) on its bus.
  ++grants_;
  obs_grants_->inc();
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> amounts(allocators_.size(), 0.0);
    double total = 0.0;
    for (std::size_t r = 0; r < allocators_.size(); ++r) {
      amounts[r] = plans[r].draw[s];
      total += amounts[r];
    }
    if (total <= 1e-12) continue;
    AGORA_REQUIRE(registered_[s], "allocation draws on an unregistered LRM");
    ReserveCommand cmd;
    cmd.request_id = req.request_id;
    cmd.amounts = amounts;
    cmd.duration = req.duration;
    out.reserves.emplace_back(s, std::move(cmd));
    for (std::size_t r = 0; r < allocators_.size(); ++r) known_[r][s] -= amounts[r];
  }

  out.kind = Decision::Kind::Granted;
  out.reply.request_id = req.request_id;
  out.reply.granted = true;
  out.reply.draws.resize(allocators_.size());
  for (std::size_t r = 0; r < allocators_.size(); ++r) out.reply.draws[r] = plans[r].draw;
  record(req.request_id, out.reply);
  return out;
}

GrmSnapshot GrmStateMachine::snapshot() const {
  GrmSnapshot snap;
  snap.systems.reserve(allocators_.size());
  for (const auto& a : allocators_) snap.systems.push_back(a->system());
  snap.known = known_;
  snap.registered = registered_;
  snap.reported = reported_;
  snap.report_time = report_time_;
  snap.report_seq = report_seq_;
  snap.scope = scope_;
  snap.decided.reserve(decided_order_.size());
  for (std::uint64_t id : decided_order_) snap.decided.emplace_back(id, decided_.at(id));
  snap.decisions = decisions_;
  snap.grants = grants_;
  snap.stale_masked = stale_masked_;
  snap.stale_reports = stale_reports_;
  snap.resyncs = resyncs_;
  snap.decided_evictions = decided_evictions_;
  return snap;
}

void GrmStateMachine::restore(const GrmSnapshot& snap) {
  AGORA_REQUIRE(snap.systems.size() == allocators_.size(),
                "snapshot resource count mismatch");
  AGORA_REQUIRE(!snap.systems.empty() && snap.systems[0].size() == registered_.size(),
                "snapshot site count mismatch");
  rebuild_allocators(snap.systems);
  known_ = snap.known;
  registered_ = snap.registered;
  reported_ = snap.reported;
  report_time_ = snap.report_time;
  report_seq_ = snap.report_seq;
  scope_ = snap.scope;
  decided_.clear();
  decided_order_.clear();
  for (const auto& [id, reply] : snap.decided) {
    decided_.emplace(id, reply);
    decided_order_.push_back(id);
  }
  decisions_ = snap.decisions;
  grants_ = snap.grants;
  stale_masked_ = snap.stale_masked;
  stale_reports_ = snap.stale_reports;
  resyncs_ = snap.resyncs;
  decided_evictions_ = snap.decided_evictions;
}

std::uint64_t GrmStateMachine::digest() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  const auto mixd = [&mix](double d) { mix(std::bit_cast<std::uint64_t>(d)); };
  mix(allocators_.size());
  mix(registered_.size());
  for (const auto& a : allocators_) {
    const agree::AgreementSystem& sys = a->system();
    for (std::size_t i = 0; i < sys.size(); ++i) {
      for (std::size_t j = 0; j < sys.size(); ++j) {
        mixd(sys.relative(i, j));
        mixd(sys.absolute(i, j));
      }
      mixd(sys.retained[i]);
    }
  }
  for (const auto& row : known_)
    for (double v : row) mixd(v);
  for (std::size_t s = 0; s < registered_.size(); ++s) {
    mix(registered_[s] ? 1 : 0);
    mix(reported_[s] ? 1 : 0);
    mixd(report_time_[s]);
    mix(report_seq_[s]);
  }
  mix(scope_.size());
  for (bool b : scope_) mix(b ? 1 : 0);
  mix(decided_order_.size());
  for (std::uint64_t id : decided_order_) {
    mix(id);
    const AllocationReply& reply = decided_.at(id);
    mix(reply.granted ? 1 : 0);
    mix(reply.draws.size());
    for (const auto& row : reply.draws)
      for (double v : row) mixd(v);
    mix(reply.reason.size());
    for (char c : reply.reason) mix(static_cast<unsigned char>(c));
  }
  mix(decisions_);
  mix(grants_);
  mix(stale_masked_);
  mix(stale_reports_);
  mix(resyncs_);
  mix(decided_evictions_);
  return h;
}

}  // namespace agora::rms
