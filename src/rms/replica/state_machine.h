// state_machine.h -- the GRM's deterministic decision core, factored out of
// the bus endpoint so it can be replicated (replica/raft.h): availability
// tracking with sequence/staleness handling, scope masking, the per-resource
// LP allocators, and the idempotent decided-reply cache.
//
// Everything here is a pure function of the applied command sequence and the
// explicit `now` arguments -- no bus, no clocks, no randomness -- which is
// what makes N replicas applying the same committed log converge to
// bit-identical state (checked with digest()). The single-GRM `rms::Grm`
// wraps one instance directly; `replica::RaftNode` applies committed log
// entries to one.
//
// The decided-reply cache is bounded (StateMachineOptions::
// decided_cache_capacity) and evicts in insertion order -- deliberately FIFO
// rather than access-ordered LRU, because cache *reads* happen only on the
// replica that receives the duplicate, and an access-ordered structure would
// make replica state diverge.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alloc/allocator.h"
#include "rms/messages.h"

namespace agora::rms {

/// A GRM state machine serialized for replica catch-up (InstallSnapshot)
/// and log compaction. Covers exactly the replicated state: agreement
/// systems (with their current relative shares), the availability view,
/// the decided-reply cache, and the apply-driven statistics. Edge-driven
/// observations (unknown_queries, duplicate_requests) are deliberately
/// excluded: they count what one node happened to be asked, not what the
/// replicated machine decided.
struct GrmSnapshot {
  std::vector<agree::AgreementSystem> systems;
  std::vector<std::vector<double>> known;  ///< [resource][site]
  std::vector<bool> registered;
  std::vector<bool> reported;
  std::vector<double> report_time;
  std::vector<std::uint64_t> report_seq;
  std::vector<bool> scope;
  /// Decided replies in insertion order (replays the FIFO eviction state).
  std::vector<std::pair<std::uint64_t, AllocationReply>> decided;
  std::uint64_t decisions = 0;
  std::uint64_t grants = 0;
  std::uint64_t stale_masked = 0;
  std::uint64_t stale_reports = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t decided_evictions = 0;
};

struct StateMachineOptions {
  /// See GrmOptions::staleness_ttl.
  double staleness_ttl = std::numeric_limits<double>::infinity();
  /// Bound on the idempotent decided-reply cache; 0 = unbounded. Evictions
  /// are FIFO by decision order and counted (rms.grm.decided_evictions).
  std::size_t decided_cache_capacity = 65536;
  /// See GrmOptions::engine_threads.
  std::size_t engine_threads = 0;
  obs::Sink sink = obs::Sink::global();
};

class GrmStateMachine {
 public:
  GrmStateMachine(std::vector<agree::AgreementSystem> systems, alloc::AllocatorOptions opts,
                  StateMachineOptions sm_opts);

  /// Identity used for obs events (the owning endpoint or replica id).
  void set_actor(std::uint32_t actor) { actor_ = actor; }

  std::size_t num_resources() const { return allocators_.size(); }
  std::size_t num_sites() const { return registered_.size(); }

  void register_site(std::size_t site);
  bool site_registered(std::size_t site) const { return registered_.at(site); }
  /// Restrict decisions to a subset of sites (hierarchical child GRM).
  void set_scope(const std::vector<std::size_t>& sites);
  bool in_scope(std::size_t site) const { return scope_.empty() || scope_.at(site); }

  /// Agreement management: change a relative share, rebuild the allocator.
  void apply_update(std::size_t resource, std::size_t from, std::size_t to, double share);
  /// Returns false (counting a stale report) when the sequence number is
  /// not newer than the last accepted one; seq 0 always lands.
  bool apply_report(const AvailabilityReport& rep, double now);
  void apply_resync(const LrmResync& rs, double now);

  /// Latest known availability (see Grm::known_available).
  double known_available(std::size_t site, std::size_t resource) const;

  /// The cached reply for an already-decided request, or nullptr. Does not
  /// count a duplicate -- callers pair it with note_duplicate().
  const AllocationReply* cached(std::uint64_t request_id) const;
  void note_duplicate();
  /// Cache a reply decided elsewhere (e.g. relayed from a parent GRM).
  void record(std::uint64_t request_id, const AllocationReply& reply);

  struct Decision {
    enum class Kind {
      Duplicate,    ///< already decided; `reply` is the cached one
      Granted,      ///< `reply` + `reserves` to emit
      Denied,       ///< `reply` is a recorded denial
      Unsatisfied,  ///< not recorded: caller may escalate to a parent GRM
    };
    Kind kind = Kind::Unsatisfied;
    AllocationReply reply;
    /// Contributing sites in ascending order with their reserve commands.
    std::vector<std::pair<std::size_t, ReserveCommand>> reserves;
  };

  /// Decide a request at time `now`. With `record_denial` false an
  /// unsatisfiable request is left undecided (Kind::Unsatisfied) so a child
  /// GRM can forward it to its parent; true denies and caches the denial.
  Decision decide(const AllocationRequest& req, double now, bool record_denial);

  /// Why a request must be denied before it may enter a replicated log
  /// (shape/principal validation a leader performs up front, so a malformed
  /// request can never trip an invariant at apply time on a follower).
  std::optional<std::string> invalid_reason(const AllocationRequest& req) const;

  GrmSnapshot snapshot() const;
  void restore(const GrmSnapshot& snap);
  /// FNV-1a digest of the replicated state (everything in GrmSnapshot).
  /// Replicas that applied the same committed prefix agree on it exactly.
  std::uint64_t digest() const;

  /// Statistics (replicated unless noted otherwise).
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t grants() const { return grants_; }
  std::uint64_t stale_masked() const { return stale_masked_; }
  std::uint64_t stale_reports() const { return stale_reports_; }
  std::uint64_t resyncs() const { return resyncs_; }
  std::uint64_t decided_evictions() const { return decided_evictions_; }
  std::size_t decided_size() const { return decided_.size(); }
  std::uint64_t duplicate_requests() const { return duplicate_requests_; }  ///< edge-driven
  std::uint64_t unknown_queries() const { return unknown_queries_; }        ///< edge-driven

 private:
  std::unique_ptr<alloc::AllocatorBase> make_allocator(agree::AgreementSystem sys) const;
  void rebuild_allocators(std::vector<agree::AgreementSystem> systems);

  alloc::AllocatorOptions opts_;
  StateMachineOptions sm_opts_;
  std::uint32_t actor_ = 0;
  std::vector<std::unique_ptr<alloc::AllocatorBase>> allocators_;
  std::vector<std::vector<double>> known_;  ///< [resource][site]
  std::vector<bool> registered_;
  std::vector<bool> reported_;
  std::vector<double> report_time_;
  std::vector<std::uint64_t> report_seq_;
  std::vector<bool> scope_;  ///< empty = all sites
  std::unordered_map<std::uint64_t, AllocationReply> decided_;
  std::deque<std::uint64_t> decided_order_;  ///< insertion order (FIFO eviction)
  std::uint64_t decisions_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t stale_masked_ = 0;
  std::uint64_t stale_reports_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t decided_evictions_ = 0;
  std::uint64_t duplicate_requests_ = 0;
  mutable std::uint64_t unknown_queries_ = 0;
  obs::Counter* obs_decisions_ = nullptr;
  obs::Counter* obs_grants_ = nullptr;
  obs::Counter* obs_stale_masked_ = nullptr;
  obs::Counter* obs_duplicate_requests_ = nullptr;
  obs::Counter* obs_stale_reports_ = nullptr;
  obs::Counter* obs_resyncs_ = nullptr;
  obs::Counter* obs_decided_evictions_ = nullptr;
};

}  // namespace agora::rms
