#include "rms/replica/group.h"

namespace agora::rms::replica {

ReplicatedGrm::ReplicatedGrm(MessageBus& bus, std::vector<agree::AgreementSystem> systems,
                             alloc::AllocatorOptions opts, double decision_latency,
                             GrmOptions grm_opts) {
  const std::size_t replicas = grm_opts.replication.replicas;
  AGORA_REQUIRE(replicas >= 1, "need at least one GRM replica");
  nodes_.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i)
    nodes_.push_back(
        std::make_unique<RaftNode>(bus, i, systems, opts, decision_latency, grm_opts));
  std::vector<EndpointId> group = endpoints();
  for (auto& n : nodes_) n->connect(group);
}

std::vector<EndpointId> ReplicatedGrm::endpoints() const {
  std::vector<EndpointId> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->endpoint());
  return out;
}

EndpointId ReplicatedGrm::ingress(std::size_t site) const {
  return nodes_[site % nodes_.size()]->endpoint();
}

void ReplicatedGrm::register_lrm(std::size_t site, EndpointId lrm) {
  for (auto& n : nodes_) n->register_lrm(site, lrm);
}

void ReplicatedGrm::start() {
  for (auto& n : nodes_) n->start();
}

void ReplicatedGrm::stop() {
  for (auto& n : nodes_) n->stop();
}

std::optional<std::size_t> ReplicatedGrm::leader() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->role() != RaftNode::Role::Leader) continue;
    if (!best || nodes_[i]->term() > nodes_[*best]->term()) best = i;
  }
  return best;
}

std::vector<std::uint64_t> ReplicatedGrm::digests() const {
  std::vector<std::uint64_t> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->digest());
  return out;
}

bool ReplicatedGrm::converged() const {
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i]->digest() != nodes_[0]->digest()) return false;
  return true;
}

RaftStats ReplicatedGrm::stats() const {
  RaftStats sum;
  for (const auto& n : nodes_) {
    const RaftStats& s = n->stats();
    sum.elections_started += s.elections_started;
    sum.elections_won += s.elections_won;
    sum.votes_granted += s.votes_granted;
    sum.appends_sent += s.appends_sent;
    sum.entries_appended += s.entries_appended;
    sum.suffix_truncations += s.suffix_truncations;
    sum.compactions += s.compactions;
    sum.snapshots_installed += s.snapshots_installed;
    sum.redirects += s.redirects;
    sum.forwarded_ingress += s.forwarded_ingress;
    sum.dropped_ingress += s.dropped_ingress;
    sum.restarts += s.restarts;
  }
  return sum;
}

}  // namespace agora::rms::replica
