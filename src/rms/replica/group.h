// group.h -- ReplicatedGrm: N RaftNode replicas of the GRM state machine on
// one MessageBus, presented as a single logical service.
//
// Construction builds the nodes (each with its own full copy of the
// agreement systems), wires them into an index-aligned group, and leaves
// them stopped; call start() to arm the election timers. Clients connect
// with RequestClient's multi-target constructor over endpoints(); LRMs
// attach to ingress(site) -- a fixed per-site replica that forwards reports
// to whichever node currently leads (GrmOptions::replication.replicas == 1
// degenerates to a single node that elects itself immediately).
//
// The test-facing surface mirrors what the chaos suite asserts: leader()
// (the unique live leader of the highest term), digests()/converged()
// (bit-identical replicated state after quiesce), and aggregated RaftStats.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "rms/replica/raft.h"

namespace agora::rms::replica {

class ReplicatedGrm {
 public:
  ReplicatedGrm(MessageBus& bus, std::vector<agree::AgreementSystem> systems,
                alloc::AllocatorOptions opts = {}, double decision_latency = 0.0,
                GrmOptions grm_opts = {});

  std::size_t size() const { return nodes_.size(); }
  RaftNode& node(std::size_t i) { return *nodes_.at(i); }
  const RaftNode& node(std::size_t i) const { return *nodes_.at(i); }

  /// Replica endpoints in id order (the RequestClient target list).
  std::vector<EndpointId> endpoints() const;
  /// The replica endpoint the given site's LRM should attach to. Sites are
  /// spread round-robin so one replica crash does not silence every report.
  EndpointId ingress(std::size_t site) const;

  /// Wire an LRM into every replica (the leader of the day sends it
  /// reserve commands; all replicas track its availability).
  void register_lrm(std::size_t site, EndpointId lrm);

  /// Arm every replica's election timer. Until the first election resolves
  /// the group answers every client with NotLeader.
  void start();
  /// Cancel timer re-arming on every replica so the bus can drain to
  /// quiescence (heartbeats otherwise keep it busy forever).
  void stop();

  /// The unique leader of the highest term, if any node currently leads.
  std::optional<std::size_t> leader() const;
  /// Replicated-state digests in id order.
  std::vector<std::uint64_t> digests() const;
  /// True when every replica's state machine is bit-identical.
  bool converged() const;

  /// Element-wise sum of every node's RaftStats.
  RaftStats stats() const;

 private:
  std::vector<std::unique_ptr<RaftNode>> nodes_;
};

}  // namespace agora::rms::replica
