// raft.h -- one replica of the replicated GRM: a Raft-lite quorum log over
// the simulated MessageBus driving a deterministic GrmStateMachine.
//
// The protocol is Raft with the standard simplifications a simulated,
// in-memory deployment affords (DESIGN.md §12):
//   * terms are monotonic; one vote per term; candidates need a majority,
//   * election timeouts are randomized-but-seeded (Pcg32 per replica), so
//     split votes are rare and every run replays bit-identically,
//   * log replication with commit-on-majority; a leader only counts
//     replicas for entries of its own term (the classic safety rule),
//   * conflicting follower suffixes are truncated, never rewritten below
//     the commit index,
//   * after `snapshot_threshold` applied entries the log is compacted into
//     a GrmSnapshot; a replica whose next entry was compacted away catches
//     up via InstallSnapshot (restarted replicas keep their in-memory term,
//     vote and log across a crash window, modeling persistent state).
//
// Effects (AllocationReply to the client, ReserveCommands to LRMs) are
// emitted only when a committed entry is APPLIED and only by the node that
// is leader at apply time: a deposed or minority-partitioned leader cannot
// commit new entries, so it can never emit a grant a majority did not
// agree to. Client traffic reaching a non-leader is answered with a
// NotLeader redirect; LRM traffic (reports, resyncs, agreement updates) is
// forwarded to the known leader or dropped (the next report/resync
// refreshes the view -- availability is self-healing state).
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "rms/grm.h"
#include "rms/replica/state_machine.h"
#include "rms/reserve_emitter.h"
#include "util/rng.h"

namespace agora::rms::replica {

struct RaftStats {
  std::uint64_t elections_started = 0;
  std::uint64_t elections_won = 0;
  std::uint64_t votes_granted = 0;
  std::uint64_t appends_sent = 0;       ///< AppendEntries messages (incl. heartbeats)
  std::uint64_t entries_appended = 0;   ///< entries appended to the local log
  std::uint64_t suffix_truncations = 0; ///< conflicting suffixes dropped
  std::uint64_t compactions = 0;        ///< log prefixes folded into snapshots
  std::uint64_t snapshots_installed = 0;
  std::uint64_t redirects = 0;          ///< NotLeader replies sent to clients
  std::uint64_t forwarded_ingress = 0;  ///< LRM traffic forwarded to the leader
  std::uint64_t dropped_ingress = 0;    ///< LRM traffic dropped (no known leader)
  std::uint64_t restarts = 0;           ///< crash-window recoveries observed
};

class RaftNode {
 public:
  enum class Role { Follower, Candidate, Leader };

  /// Each node owns a full copy of the agreement systems (its replica of
  /// the state machine). Construct all N nodes, then connect() each with
  /// the index-aligned endpoint list, then start() them.
  RaftNode(MessageBus& bus, std::size_t id, std::vector<agree::AgreementSystem> systems,
           alloc::AllocatorOptions opts, double decision_latency, GrmOptions grm_opts);

  void connect(std::vector<EndpointId> group);
  /// Arm the first election timer. Until some node's timer fires and wins
  /// an election the group answers every client with NotLeader.
  void start();
  /// Cancel timer re-arming so a test can drain the bus to quiescence
  /// (heartbeats otherwise keep the bus busy forever). In-flight messages
  /// still deliver and replicate.
  void stop();

  EndpointId endpoint() const { return endpoint_; }
  std::size_t id() const { return id_; }
  Role role() const { return role_; }
  std::uint64_t term() const { return term_; }
  std::uint64_t commit_index() const { return commit_; }
  std::uint64_t applied_index() const { return applied_; }
  std::uint64_t last_index() const { return snap_index_ + log_.size(); }
  std::uint64_t snapshot_index() const { return snap_index_; }
  std::optional<std::size_t> leader_hint() const { return leader_; }

  void register_lrm(std::size_t site, EndpointId lrm);

  const GrmStateMachine& machine() const { return sm_; }
  std::uint64_t digest() const { return sm_.digest(); }
  const RaftStats& stats() const { return stats_; }

 private:
  void handle(const Envelope& env);
  void on_timer(std::uint64_t token);
  void on_election_timeout();
  void on_heartbeat_timeout();
  void on_request_vote(const RequestVote& rv);
  void on_vote_reply(const VoteReply& vr);
  void on_append(const AppendEntries& ae);
  void on_append_reply(const AppendReply& ar);
  void on_install_snapshot(const InstallSnapshot& is);
  void on_snapshot_reply(const SnapshotReply& sr);
  void on_client_request(const AllocationRequest& req, EndpointId from);
  void on_ingress(LogCommand cmd, EndpointId from);
  void on_restart();

  void start_election();
  void become_leader();
  void step_down(std::uint64_t new_term);
  void append_command(LogCommand cmd, EndpointId origin);
  void broadcast_append();
  void send_append(std::size_t peer);
  void advance_commit();
  void apply_committed();
  void apply_entry(const LogEntry& e);
  void maybe_compact();
  void truncate_suffix(std::uint64_t from_index);

  /// Term of log index `i` (snap_term_ for the snapshot boundary).
  std::uint64_t entry_term(std::uint64_t i) const;
  std::uint64_t last_term() const { return entry_term(last_index()); }
  const LogEntry& entry(std::uint64_t i) const;
  std::size_t quorum() const { return group_.size() / 2 + 1; }

  double draw_timeout();
  /// Re-arm the election deadline; schedules a check timer if none is live.
  void ensure_election_timer();
  void schedule_election_check(double delay);
  void arm_heartbeat();
  std::uint64_t next_raft_token() {
    const std::uint64_t t = next_token_;
    next_token_ += 2;  // even tokens; the reserve emitter owns the odd ones
    return t;
  }

  MessageBus& bus_;
  std::size_t id_;
  EndpointId endpoint_ = 0;
  double decision_latency_;
  GrmOptions grm_opts_;
  ReplicationOptions rep_;
  GrmStateMachine sm_;
  ReserveEmitter emitter_;
  std::vector<EndpointId> group_;  ///< replica index -> endpoint
  std::vector<EndpointId> lrm_endpoints_;
  Pcg32 rng_;
  bool stopped_ = false;

  // --- persistent Raft state (survives simulated crashes: the in-memory
  // object models the durable store) ---
  std::uint64_t term_ = 0;
  std::optional<std::size_t> voted_for_;
  std::vector<LogEntry> log_;       ///< entries (snap_index_, last_index_]
  std::uint64_t snap_index_ = 0;    ///< last index folded into the snapshot
  std::uint64_t snap_term_ = 0;
  std::shared_ptr<const GrmSnapshot> snap_blob_;

  // --- volatile state ---
  Role role_ = Role::Follower;
  std::optional<std::size_t> leader_;  ///< believed leader of term_
  std::uint64_t commit_ = 0;
  std::uint64_t applied_ = 0;
  std::vector<bool> votes_;
  std::vector<std::uint64_t> next_;   ///< leader: next index to send per peer
  std::vector<std::uint64_t> match_;  ///< leader: highest replicated per peer
  /// AllocationRequest ids appended but not yet applied (leader-side
  /// duplicate suppression between append and commit).
  std::unordered_set<std::uint64_t> in_flight_;

  // --- timers (token-versioned: only the stored token is live; stale
  // timer chains die on delivery, so crash/restart never double-arms) ---
  double election_deadline_ = 0.0;
  bool election_armed_ = false;  ///< a live election-check timer exists
  std::uint64_t election_token_ = 0;
  std::uint64_t heartbeat_token_ = 0;
  std::uint64_t next_token_ = 2;

  RaftStats stats_;
  obs::Counter* obs_elections_ = nullptr;
  obs::Counter* obs_commits_ = nullptr;
  obs::Counter* obs_redirects_ = nullptr;
  obs::Gauge* obs_term_ = nullptr;
  obs::Gauge* obs_commit_index_ = nullptr;
};

}  // namespace agora::rms::replica
