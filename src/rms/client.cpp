#include "rms/client.h"

#include <algorithm>
#include <cmath>

namespace agora::rms {

RequestClient::RequestClient(MessageBus& bus, EndpointId grm, ClientOptions opts)
    : RequestClient(bus, std::vector<EndpointId>{grm}, std::move(opts)) {}

RequestClient::RequestClient(MessageBus& bus, std::vector<EndpointId> targets,
                             ClientOptions opts)
    : bus_(bus), targets_(std::move(targets)), opts_(opts),
      rng_(opts.retry_jitter_seed, 0xc11e) {
  AGORA_REQUIRE(!targets_.empty(), "client needs at least one GRM endpoint");
  AGORA_REQUIRE(opts_.max_attempts >= 1, "need at least one attempt");
  AGORA_REQUIRE(opts_.retry_backoff > 0.0 && opts_.backoff_cap > 0.0,
                "backoff must be positive");
  AGORA_REQUIRE(opts_.retry_jitter >= 0.0, "jitter must be non-negative");
  AGORA_REQUIRE(opts_.deadline > 0.0, "deadline must be positive");
  AGORA_REQUIRE(opts_.send_latency >= 0.0, "latency must be non-negative");
  obs_retries_ = &opts_.sink.counter("rms.client.retries");
  obs_deadline_denials_ = &opts_.sink.counter("rms.client.deadline_denials");
  obs_duplicate_replies_ = &opts_.sink.counter("rms.client.duplicate_replies");
  obs_redirects_ = &opts_.sink.counter("rms.client.redirects");
  obs_failovers_ = &opts_.sink.counter("rms.client.failovers");
  obs_latency_ = &opts_.sink.histogram("rms.client.request_latency.vt_seconds");
  endpoint_ = bus_.add_endpoint([this](const Envelope& env) { handle(env); });
}

double RequestClient::jittered(double delay) {
  // The RNG is consulted only when jitter is on, so jitter-off schedules
  // are bit-identical to the pre-jitter protocol.
  if (opts_.retry_jitter <= 0.0) return delay;
  return delay * (1.0 + opts_.retry_jitter * rng_.next_double());
}

void RequestClient::send(Pending& p) {
  p.sent_to = target_;
  p.responded = false;
  AllocationRequest req = p.req;
  req.attempt = static_cast<std::uint32_t>(p.attempts - 1);
  bus_.post(endpoint_, targets_[target_], std::move(req), opts_.send_latency);
}

std::uint64_t RequestClient::submit(AllocationRequest req) {
  AGORA_REQUIRE(pending_.count(req.request_id) == 0 && done_.count(req.request_id) == 0,
                "request_id already in use");
  const double now = bus_.now();
  Pending p;
  p.req = req;
  p.submitted_at = now;
  p.deadline_at = std::isfinite(opts_.deadline)
                      ? now + opts_.deadline
                      : std::numeric_limits<double>::infinity();
  p.attempts = 1;
  p.backoff = opts_.retry_backoff;
  const std::uint64_t id = req.request_id;
  Pending& slot = pending_[id] = std::move(p);
  send(slot);
  // Wake up to retry or to enforce the deadline; a fire-and-forget client
  // (no retries, no deadline) never needs a timer.
  if (opts_.max_attempts > 1 || std::isfinite(opts_.deadline))
    schedule_wakeup(id, std::min(jittered(opts_.retry_backoff), opts_.deadline));
  return id;
}

bool RequestClient::resolved(std::uint64_t request_id) const {
  return done_.count(request_id) != 0;
}

const RequestClient::Outcome& RequestClient::outcome(std::uint64_t request_id) const {
  const auto it = done_.find(request_id);
  AGORA_REQUIRE(it != done_.end(), "request not resolved");
  return order_[it->second];
}

void RequestClient::schedule_wakeup(std::uint64_t request_id, double delay) {
  const std::uint64_t token = next_token_++;
  timer_targets_[token] = request_id;
  bus_.post(endpoint_, endpoint_, Timer{token}, std::max(delay, 0.0));
}

void RequestClient::finalize(std::uint64_t request_id, AllocationReply reply) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Outcome out;
  out.reply = std::move(reply);
  out.submitted_at = it->second.submitted_at;
  out.resolved_at = bus_.now();
  obs_latency_->observe(out.resolved_at - out.submitted_at);
  pending_.erase(it);
  done_[request_id] = order_.size();
  order_.push_back(std::move(out));
}

void RequestClient::handle(const Envelope& env) {
  if (const auto* reply = std::get_if<AllocationReply>(&env.payload)) {
    if (pending_.count(reply->request_id) == 0) {
      // Late or duplicated reply for an already-resolved request.
      ++duplicate_replies_;
      obs_duplicate_replies_->inc();
      return;
    }
    finalize(reply->request_id, *reply);
    return;
  }
  if (const auto* nl = std::get_if<NotLeader>(&env.payload)) {
    on_not_leader(*nl);
    return;
  }
  if (const auto* timer = std::get_if<Timer>(&env.payload)) {
    on_timer(timer->token);
    return;
  }
}

void RequestClient::on_not_leader(const NotLeader& nl) {
  const auto it = pending_.find(nl.request_id);
  if (it == pending_.end()) return;  // resolved in the meantime
  Pending& p = it->second;
  p.responded = true;
  ++redirects_;
  obs_redirects_->inc();
  if (nl.leader_known) {
    // The follower named the leader: adopt it, and resend right away if it
    // actually changes where we point. The resend budget bounds the
    // ping-pong that stale cross-pointing hints could otherwise sustain
    // (the retry/deadline timers still stand behind it either way).
    const auto hint = std::find(targets_.begin(), targets_.end(), nl.leader);
    if (hint != targets_.end()) {
      const auto idx = static_cast<std::size_t>(hint - targets_.begin());
      const bool moved = idx != p.sent_to;
      target_ = idx;
      opts_.sink.event(bus_.now(), obs::EventKind::ClientRedirect,
                       static_cast<std::uint32_t>(endpoint_),
                       static_cast<std::uint32_t>(nl.leader),
                       static_cast<double>(p.attempts));
      if (moved && p.redirect_sends < static_cast<int>(2 * targets_.size())) {
        ++p.redirect_sends;
        send(p);
      }
      return;
    }
  }
  // No leader yet (mid-election) or an unknown hint: rotate off the
  // follower so the next retry probes a different replica.
  if (target_ == p.sent_to) target_ = (target_ + 1) % targets_.size();
}

void RequestClient::on_timer(std::uint64_t token) {
  const auto target = timer_targets_.find(token);
  if (target == timer_targets_.end()) return;
  const std::uint64_t id = target->second;
  timer_targets_.erase(target);
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // resolved while the timer was in flight
  Pending& p = it->second;
  const double now = bus_.now();

  if (now >= p.deadline_at - 1e-12) {
    // Deadline: resolve locally instead of hanging.
    ++deadline_denials_;
    obs_deadline_denials_->inc();
    opts_.sink.event(now, obs::EventKind::ClientDeadline, static_cast<std::uint32_t>(endpoint_),
                     0, static_cast<double>(p.attempts));
    AllocationReply reply;
    reply.request_id = id;
    reply.granted = false;
    reply.reason = "deadline exceeded after " + std::to_string(p.attempts) + " attempt(s)";
    finalize(id, std::move(reply));
    return;
  }
  if (p.attempts < opts_.max_attempts) {
    // Failover: the last send to this target produced neither a reply nor
    // a redirect -- assume the node is dead or cut off and try the next.
    if (targets_.size() > 1 && !p.responded && target_ == p.sent_to) {
      target_ = (target_ + 1) % targets_.size();
      ++failovers_;
      obs_failovers_->inc();
    }
    ++p.attempts;
    p.redirect_sends = 0;
    ++retries_;
    obs_retries_->inc();
    opts_.sink.event(now, obs::EventKind::GrmRetry, static_cast<std::uint32_t>(endpoint_),
                     static_cast<std::uint32_t>(targets_[target_]),
                     static_cast<double>(p.attempts));
    send(p);
    p.backoff = std::min(p.backoff * 2.0, opts_.backoff_cap);
    schedule_wakeup(id, std::min(jittered(p.backoff), p.deadline_at - now));
    return;
  }
  // Attempts exhausted: nothing left to send, wait out the deadline.
  if (std::isfinite(p.deadline_at)) schedule_wakeup(id, p.deadline_at - now);
}

}  // namespace agora::rms
