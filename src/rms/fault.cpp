#include "rms/fault.h"

#include <algorithm>

#include "util/error.h"

namespace agora::rms {

bool FaultPlan::active() const {
  if (default_link.any()) return true;
  if (!partitions.empty() || !crashes.empty()) return true;
  return std::any_of(per_link.begin(), per_link.end(),
                     [](const auto& kv) { return kv.second.any(); });
}

const LinkFaults& FaultPlan::link(EndpointId from, EndpointId to) const {
  const auto it = per_link.find({from, to});
  return it == per_link.end() ? default_link : it->second;
}

bool FaultPlan::crashed(EndpointId e, double t) const {
  for (const CrashWindow& w : crashes)
    if (w.endpoint == e && t >= w.start && t < w.end) return true;
  return false;
}

bool FaultPlan::severed(EndpointId a, EndpointId b, double t) const {
  for (const Partition& p : partitions) {
    if (t < p.start || t >= p.end) continue;
    const bool a_in = std::find(p.group.begin(), p.group.end(), a) != p.group.end();
    const bool b_in = std::find(p.group.begin(), p.group.end(), b) != p.group.end();
    if (a_in != b_in) return true;
  }
  return false;
}

namespace {
void check_link(const LinkFaults& lf) {
  AGORA_REQUIRE(lf.drop >= 0.0 && lf.drop <= 1.0, "drop probability must be in [0, 1]");
  AGORA_REQUIRE(lf.duplicate >= 0.0 && lf.duplicate <= 1.0,
                "duplicate probability must be in [0, 1]");
  AGORA_REQUIRE(lf.jitter >= 0.0, "jitter must be non-negative");
}
}  // namespace

void FaultPlan::validate() const {
  check_link(default_link);
  for (const auto& [key, lf] : per_link) check_link(lf);
  for (const Partition& p : partitions)
    AGORA_REQUIRE(p.end >= p.start, "partition window must have end >= start");
  for (const CrashWindow& w : crashes)
    AGORA_REQUIRE(w.end >= w.start, "crash window must have end >= start");
}

}  // namespace agora::rms
