#include "rms/lrm.h"

#include <algorithm>

namespace agora::rms {

Lrm::Lrm(MessageBus& bus, std::vector<double> capacity, double report_latency)
    : bus_(bus), report_latency_(report_latency), capacity_(std::move(capacity)),
      available_(capacity_) {
  AGORA_REQUIRE(!capacity_.empty(), "LRM needs at least one resource");
  for (double c : capacity_) AGORA_REQUIRE(c >= 0.0, "capacity must be non-negative");
  AGORA_REQUIRE(report_latency_ >= 0.0, "latency must be non-negative");
  endpoint_ = bus_.add_endpoint([this](const Envelope& env) { handle(env); });
}

void Lrm::attach(EndpointId grm, std::size_t site_index) {
  grm_ = grm;
  site_ = site_index;
  attached_ = true;
  bus_.set_restart_handler(endpoint_, [this] { resync(); });
  report();
}

void Lrm::adjust_capacity(std::size_t resource, double delta) {
  AGORA_REQUIRE(resource < capacity_.size(), "unknown resource");
  AGORA_REQUIRE(capacity_[resource] + delta >= -1e-12, "capacity cannot go negative");
  capacity_[resource] += delta;
  available_[resource] = std::max(0.0, available_[resource] + delta);
  if (attached_) report();
}

void Lrm::report() {
  AvailabilityReport rep;
  rep.lrm = site_;
  rep.available = available_;
  rep.timestamp = bus_.now();
  rep.report_seq = ++report_seq_;
  bus_.post(endpoint_, grm_, rep, report_latency_);
}

void Lrm::resync() {
  if (!attached_) return;
  const double now = bus_.now();
  // Expiries that passed while we were down: their scheduled release was
  // lost with the crash, so release them here.
  std::vector<std::uint64_t> overdue;
  for (const auto& [id, hold] : reservations_)
    if (hold.expires_at > 0.0 && hold.expires_at <= now) overdue.push_back(id);
  for (std::uint64_t id : overdue) {
    const auto it = reservations_.find(id);
    for (std::size_t r = 0; r < available_.size(); ++r)
      available_[r] = std::min(capacity_[r], available_[r] + it->second.amounts[r]);
    released_.insert(id);
    reservations_.erase(it);
  }
  LrmResync rs;
  rs.lrm = site_;
  rs.timestamp = now;
  rs.available = available_;
  for (const auto& [id, hold] : reservations_) {
    rs.holds.push_back(LrmResync::Hold{id, hold.amounts, hold.expires_at});
    // Re-schedule the expiry; the original self-release may have been lost
    // while down, and a duplicate release is idempotent.
    if (hold.expires_at > now)
      bus_.post(endpoint_, endpoint_, ReleaseNotice{id}, hold.expires_at - now);
  }
  bus_.post(endpoint_, grm_, std::move(rs), report_latency_);
}

void Lrm::reserve(const ReserveCommand& cmd, EndpointId ack_to) {
  AGORA_REQUIRE(cmd.amounts.size() == available_.size(),
                "reserve command resource count mismatch");
  // Follow the coordinator: whoever sends reserve commands is (or fronts)
  // the live GRM, so future reports go there. With a replicated GRM this
  // re-targets reports off a crashed ingress replica onto the current
  // leader -- otherwise every availability change during the ingress's
  // crash window would vanish and the site's capacity would stay invisible
  // until the restart resync. Unreplicated, ack_to == grm_ already.
  if (attached_) grm_ = ack_to;
  // Idempotency: a retried command for a live or already-released
  // reservation is acknowledged but never applied twice.
  if (reservations_.count(cmd.request_id) != 0 || released_.count(cmd.request_id) != 0) {
    ++duplicate_commands_;
    if (cmd.want_ack) bus_.post(endpoint_, ack_to, Ack{cmd.request_id, site_}, report_latency_);
    return;
  }
  // Fulfil the GRM's decision. A decision based on a stale report can
  // overshoot; clamp and report the truth back (the GRM reconciles).
  Hold hold;
  hold.amounts.assign(available_.size(), 0.0);
  for (std::size_t r = 0; r < available_.size(); ++r) {
    hold.amounts[r] = std::min(cmd.amounts[r], available_[r]);
    available_[r] -= hold.amounts[r];
  }
  if (cmd.duration > 0.0) {
    hold.expires_at = bus_.now() + cmd.duration;
    // Schedule our own release (self-message models the job finishing).
    bus_.post(endpoint_, endpoint_, ReleaseNotice{cmd.request_id}, cmd.duration);
  }
  reservations_[cmd.request_id] = std::move(hold);
  if (cmd.want_ack) bus_.post(endpoint_, ack_to, Ack{cmd.request_id, site_}, report_latency_);
  report();
}

void Lrm::release(std::uint64_t request_id) {
  const auto it = reservations_.find(request_id);
  if (it == reservations_.end()) return;  // duplicate release: idempotent
  for (std::size_t r = 0; r < available_.size(); ++r)
    available_[r] = std::min(capacity_[r], available_[r] + it->second.amounts[r]);
  released_.insert(request_id);
  reservations_.erase(it);
  report();
}

void Lrm::serve_local(const AllocationRequest& req, EndpointId reply_to) {
  // Local-only admission: the degraded mode for a site whose GRM is
  // unreachable. Grants come strictly from this site's free capacity
  // (no agreements, no borrowing); anything else is denied with a reason.
  AllocationReply reply;
  reply.request_id = req.request_id;
  if (const auto it = reservations_.find(req.request_id); it != reservations_.end()) {
    // Retried request already admitted: repeat the grant.
    reply.granted = true;
    reply.draws.assign(available_.size(), std::vector<double>(site_ + 1, 0.0));
    for (std::size_t r = 0; r < available_.size(); ++r)
      reply.draws[r][site_] = it->second.amounts[r];
    bus_.post(endpoint_, reply_to, std::move(reply), report_latency_);
    return;
  }
  if (released_.count(req.request_id) != 0) {
    reply.granted = false;
    reply.reason = "local-only admission: request already completed";
    bus_.post(endpoint_, reply_to, std::move(reply), report_latency_);
    return;
  }
  bool feasible = req.amounts.size() == available_.size();
  if (feasible)
    for (std::size_t r = 0; r < available_.size(); ++r)
      feasible = feasible && req.amounts[r] <= available_[r] + 1e-12;
  if (!feasible) {
    ++local_denials_;
    reply.granted = false;
    reply.reason = "local-only admission: insufficient local capacity";
    bus_.post(endpoint_, reply_to, std::move(reply), report_latency_);
    return;
  }
  ++local_admissions_;
  Hold hold;
  hold.amounts.assign(available_.size(), 0.0);
  for (std::size_t r = 0; r < available_.size(); ++r) {
    hold.amounts[r] = std::min(req.amounts[r], available_[r]);
    available_[r] -= hold.amounts[r];
  }
  if (req.duration > 0.0) {
    hold.expires_at = bus_.now() + req.duration;
    bus_.post(endpoint_, endpoint_, ReleaseNotice{req.request_id}, req.duration);
  }
  reply.granted = true;
  reply.draws.assign(available_.size(), std::vector<double>(site_ + 1, 0.0));
  for (std::size_t r = 0; r < available_.size(); ++r)
    reply.draws[r][site_] = hold.amounts[r];
  reservations_[req.request_id] = std::move(hold);
  bus_.post(endpoint_, reply_to, std::move(reply), report_latency_);
  if (attached_) report();
}

void Lrm::handle(const Envelope& env) {
  if (const auto* cmd = std::get_if<ReserveCommand>(&env.payload)) {
    reserve(*cmd, env.from);
    return;
  }
  if (const auto* rel = std::get_if<ReleaseNotice>(&env.payload)) {
    release(rel->request_id);
    return;
  }
  if (const auto* req = std::get_if<AllocationRequest>(&env.payload)) {
    serve_local(*req, env.from);
    return;
  }
  // Other payloads are not for LRMs; ignore (robustness to misrouting).
}

}  // namespace agora::rms
