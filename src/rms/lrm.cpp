#include "rms/lrm.h"

#include <algorithm>

namespace agora::rms {

Lrm::Lrm(MessageBus& bus, std::vector<double> capacity, double report_latency)
    : bus_(bus), report_latency_(report_latency), capacity_(std::move(capacity)),
      available_(capacity_) {
  AGORA_REQUIRE(!capacity_.empty(), "LRM needs at least one resource");
  for (double c : capacity_) AGORA_REQUIRE(c >= 0.0, "capacity must be non-negative");
  AGORA_REQUIRE(report_latency_ >= 0.0, "latency must be non-negative");
  endpoint_ = bus_.add_endpoint([this](const Envelope& env) { handle(env); });
}

void Lrm::attach(EndpointId grm, std::size_t site_index) {
  grm_ = grm;
  site_ = site_index;
  attached_ = true;
  report();
}

void Lrm::adjust_capacity(std::size_t resource, double delta) {
  AGORA_REQUIRE(resource < capacity_.size(), "unknown resource");
  AGORA_REQUIRE(capacity_[resource] + delta >= -1e-12, "capacity cannot go negative");
  capacity_[resource] += delta;
  available_[resource] = std::max(0.0, available_[resource] + delta);
  if (attached_) report();
}

void Lrm::report() {
  AvailabilityReport rep;
  rep.lrm = site_;
  rep.available = available_;
  bus_.post(endpoint_, grm_, rep, report_latency_);
}

void Lrm::handle(const Envelope& env) {
  if (const auto* reserve = std::get_if<ReserveCommand>(&env.payload)) {
    AGORA_REQUIRE(reserve->amounts.size() == available_.size(),
                  "reserve command resource count mismatch");
    // Fulfil the GRM's decision. A decision based on a stale report can
    // overshoot; clamp and report the truth back (the GRM reconciles).
    std::vector<double> taken(available_.size(), 0.0);
    for (std::size_t r = 0; r < available_.size(); ++r) {
      taken[r] = std::min(reserve->amounts[r], available_[r]);
      available_[r] -= taken[r];
    }
    reservations_[reserve->request_id] = taken;
    if (reserve->duration > 0.0) {
      // Schedule our own release (self-message models the job finishing).
      bus_.post(endpoint_, endpoint_, ReleaseNotice{reserve->request_id}, reserve->duration);
    }
    report();
    return;
  }
  if (const auto* release = std::get_if<ReleaseNotice>(&env.payload)) {
    const auto it = reservations_.find(release->request_id);
    if (it == reservations_.end()) return;  // duplicate release: idempotent
    for (std::size_t r = 0; r < available_.size(); ++r)
      available_[r] = std::min(capacity_[r], available_[r] + it->second[r]);
    reservations_.erase(it);
    report();
    return;
  }
  // Other payloads are not for LRMs; ignore (robustness to misrouting).
}

}  // namespace agora::rms
