// reserve_emitter.h -- sends ReserveCommands to LRMs and, when configured
// with more than one attempt, retries them with (optionally jittered)
// exponential backoff until acknowledged. Factored out of the GRM so the
// single Grm endpoint and every replicated leader (replica/raft.h) share one
// implementation.
//
// Retry timers are self-addressed bus messages; the token space is
// parameterized (first_token/token_stride) so an owner that multiplexes its
// own timers on the same endpoint (a Raft node's election and heartbeat
// timers) can keep the spaces disjoint.
//
// The jitter option decorrelates retry schedules across request streams:
// after a partition heals, a fleet of un-acked reserves would otherwise all
// fire on the same exponential schedule (a synchronized retry storm). The
// draw comes from a seeded PCG stream and is only consulted when jitter > 0,
// so jitter-off traces are bit-identical to the seed.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "rms/bus.h"
#include "rms/messages.h"
#include "util/rng.h"

namespace agora::rms {

struct ReserveEmitterOptions {
  int attempts = 1;          ///< total delivery attempts (1 = fire-and-forget)
  double backoff = 0.25;     ///< initial retry spacing (doubles per attempt)
  double backoff_cap = 2.0;  ///< backoff ceiling
  /// Extra uniform delay as a fraction of each backoff interval (0 = none):
  /// delay = backoff * (1 + jitter * U[0,1)).
  double jitter = 0.0;
  std::uint64_t jitter_seed = 1;
  double send_latency = 0.0;  ///< GRM -> LRM network delay per send
  std::uint64_t first_token = 1;
  std::uint64_t token_stride = 1;
  obs::Sink sink = obs::Sink::global();
};

class ReserveEmitter {
 public:
  ReserveEmitter(MessageBus& bus, ReserveEmitterOptions opts);

  /// Late-bind the owning endpoint and its site -> LRM endpoint table (both
  /// exist only after the owner registered itself on the bus).
  void bind(EndpointId self, const std::vector<EndpointId>* lrm_endpoints);

  /// Send (and with attempts > 1, keep retrying) one reserve command.
  void send(std::uint64_t request_id, std::size_t site, ReserveCommand cmd);
  void on_ack(std::uint64_t request_id, std::size_t site);
  /// Handle a timer tick. Returns false when the token is not one of ours
  /// (the owner should try its other timer consumers).
  bool on_timer(std::uint64_t token);
  /// Forget every pending retry (leadership lost or endpoint restarted);
  /// in-flight timers for them become no-ops.
  void abandon_all();

  std::size_t pending() const { return pending_.size(); }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t abandoned() const { return abandoned_; }

 private:
  struct PendingReserve {
    ReserveCommand cmd;
    std::size_t site = 0;
    int attempts = 0;
    double backoff = 0.0;
  };

  double jittered(double delay);

  MessageBus& bus_;
  ReserveEmitterOptions opts_;
  EndpointId self_ = 0;
  const std::vector<EndpointId>* lrm_endpoints_ = nullptr;
  Pcg32 rng_;
  std::unordered_map<std::uint64_t, PendingReserve> pending_;  ///< by timer token
  std::map<std::pair<std::uint64_t, std::size_t>, std::uint64_t> tokens_;
  std::uint64_t next_token_ = 1;
  std::uint64_t retries_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t abandoned_ = 0;
  obs::Counter* obs_retries_ = nullptr;
  obs::Counter* obs_failures_ = nullptr;
};

}  // namespace agora::rms
