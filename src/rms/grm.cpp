#include "rms/grm.h"

#include <algorithm>

namespace agora::rms {

Grm::Grm(MessageBus& bus, std::vector<agree::AgreementSystem> systems,
         alloc::AllocatorOptions opts, double decision_latency)
    : bus_(bus), decision_latency_(decision_latency), opts_(opts) {
  AGORA_REQUIRE(!systems.empty(), "GRM needs at least one resource system");
  const std::size_t n = systems[0].size();
  for (const auto& s : systems)
    AGORA_REQUIRE(s.size() == n, "all resource systems must cover the same sites");
  allocators_.reserve(systems.size());
  for (auto& s : systems) {
    known_.emplace_back(s.capacity);  // seed with declared capacities
    allocators_.emplace_back(std::move(s), opts);
  }
  lrm_endpoints_.assign(n, 0);
  lrm_known_.assign(n, false);
  endpoint_ = bus_.add_endpoint([this](const Envelope& env) { handle(env); });
}

void Grm::register_lrm(std::size_t site, EndpointId lrm) {
  AGORA_REQUIRE(site < lrm_endpoints_.size(), "unknown site");
  lrm_endpoints_[site] = lrm;
  lrm_known_[site] = true;
}

void Grm::set_scope(std::vector<std::size_t> sites, EndpointId parent) {
  scope_.assign(lrm_endpoints_.size(), false);
  for (std::size_t s : sites) {
    AGORA_REQUIRE(s < scope_.size(), "scope site out of range");
    scope_[s] = true;
  }
  parent_ = parent;
}

bool Grm::in_scope(std::size_t site) const { return scope_.empty() || scope_.at(site); }

void Grm::update_agreement(std::size_t resource, std::size_t from, std::size_t to,
                           double share) {
  AGORA_REQUIRE(resource < allocators_.size(), "unknown resource");
  // Rebuild the allocator with the updated matrix (agreement changes are
  // rare control-plane events; the closure recomputation is acceptable).
  agree::AgreementSystem sys = allocators_[resource].system();
  AGORA_REQUIRE(from < sys.size() && to < sys.size() && from != to, "bad agreement endpoints");
  AGORA_REQUIRE(share >= 0.0, "share must be non-negative");
  sys.relative(from, to) = share;
  allocators_[resource] = alloc::Allocator(std::move(sys), opts_);
}

double Grm::known_available(std::size_t site, std::size_t resource) const {
  AGORA_REQUIRE(resource < known_.size() && site < known_[resource].size(),
                "unknown site/resource");
  return known_[resource][site];
}

void Grm::handle(const Envelope& env) {
  if (const auto* rep = std::get_if<AvailabilityReport>(&env.payload)) {
    AGORA_REQUIRE(rep->available.size() == allocators_.size(),
                  "availability report resource count mismatch");
    for (std::size_t r = 0; r < allocators_.size(); ++r)
      known_[r][rep->lrm] = rep->available[r];
    return;
  }
  if (const auto* req = std::get_if<AllocationRequest>(&env.payload)) {
    decide(*req, env.from);
    return;
  }
  if (const auto* reply = std::get_if<AllocationReply>(&env.payload)) {
    // A reply from our parent for a forwarded request: relay it.
    const auto it = forwarded_.find(reply->request_id);
    if (it != forwarded_.end()) {
      bus_.post(endpoint_, it->second, *reply, decision_latency_);
      forwarded_.erase(it);
    }
    return;
  }
  if (const auto* upd = std::get_if<AgreementUpdate>(&env.payload)) {
    update_agreement(upd->resource, upd->from, upd->to, upd->share);
    return;
  }
  // ReleaseNotice sent to a GRM is informational; availability arrives via
  // the LRM's follow-up report.
}

void Grm::decide(const AllocationRequest& req, EndpointId reply_to) {
  ++decisions_;
  AGORA_REQUIRE(req.amounts.size() == allocators_.size(),
                "request must name an amount per resource");
  AGORA_REQUIRE(req.principal < lrm_endpoints_.size(), "unknown principal");

  // Refresh allocators with the latest availability, masking out-of-scope
  // sites (a child GRM cannot spend capacity it does not manage).
  std::vector<std::vector<double>> caps(allocators_.size());
  for (std::size_t r = 0; r < allocators_.size(); ++r) {
    caps[r] = known_[r];
    if (!scope_.empty())
      for (std::size_t s = 0; s < caps[r].size(); ++s)
        if (!scope_[s]) caps[r][s] = 0.0;
    allocators_[r].set_capacities(caps[r]);
  }

  // Solve the per-resource LPs.
  std::vector<alloc::AllocationPlan> plans(allocators_.size());
  bool ok = true;
  for (std::size_t r = 0; r < allocators_.size(); ++r) {
    plans[r] = allocators_[r].allocate(req.principal, req.amounts[r]);
    ok = ok && plans[r].satisfied();
  }

  if (!ok) {
    if (parent_) {
      // Escalate: the parent sees the full system.
      ++forwards_;
      forwarded_[req.request_id] = reply_to;
      bus_.post(endpoint_, *parent_, req, decision_latency_);
      return;
    }
    AllocationReply reply;
    reply.request_id = req.request_id;
    reply.granted = false;
    reply.reason = "insufficient capacity under agreements";
    bus_.post(endpoint_, reply_to, reply, decision_latency_);
    return;
  }

  // Commit: instruct every contributing LRM and update our book-keeping.
  ++grants_;
  const std::size_t n = lrm_endpoints_.size();
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> amounts(allocators_.size(), 0.0);
    double total = 0.0;
    for (std::size_t r = 0; r < allocators_.size(); ++r) {
      amounts[r] = plans[r].draw[s];
      total += amounts[r];
    }
    if (total <= 1e-12) continue;
    AGORA_REQUIRE(lrm_known_[s], "allocation draws on an unregistered LRM");
    ReserveCommand cmd;
    cmd.request_id = req.request_id;
    cmd.amounts = amounts;
    cmd.duration = req.duration;
    bus_.post(endpoint_, lrm_endpoints_[s], cmd, decision_latency_);
    for (std::size_t r = 0; r < allocators_.size(); ++r) known_[r][s] -= amounts[r];
  }

  AllocationReply reply;
  reply.request_id = req.request_id;
  reply.granted = true;
  reply.draws.resize(allocators_.size());
  for (std::size_t r = 0; r < allocators_.size(); ++r) reply.draws[r] = plans[r].draw;
  bus_.post(endpoint_, reply_to, reply, decision_latency_);
}

}  // namespace agora::rms
