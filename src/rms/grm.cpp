#include "rms/grm.h"

#include <algorithm>
#include <cmath>

#include "engine/engine.h"

namespace agora::rms {

std::unique_ptr<alloc::AllocatorBase> Grm::make_allocator(agree::AgreementSystem sys) const {
  if (grm_opts_.engine_threads >= 1) {
    engine::EngineOptions eng;
    eng.threads = grm_opts_.engine_threads;
    eng.alloc = opts_;
    eng.sink = opts_.sink;
    return std::make_unique<engine::EnforcementEngine>(std::move(sys), std::move(eng));
  }
  return std::make_unique<alloc::Allocator>(std::move(sys), opts_);
}

Grm::Grm(MessageBus& bus, std::vector<agree::AgreementSystem> systems,
         alloc::AllocatorOptions opts, double decision_latency, GrmOptions grm_opts)
    : bus_(bus), decision_latency_(decision_latency), opts_(opts), grm_opts_(grm_opts) {
  AGORA_REQUIRE(!systems.empty(), "GRM needs at least one resource system");
  AGORA_REQUIRE(grm_opts_.staleness_ttl > 0.0, "staleness TTL must be positive");
  AGORA_REQUIRE(grm_opts_.reserve_attempts >= 1, "need at least one reserve attempt");
  AGORA_REQUIRE(grm_opts_.reserve_backoff > 0.0 && grm_opts_.reserve_backoff_cap > 0.0,
                "reserve backoff must be positive");
  const std::size_t n = systems[0].size();
  for (const auto& s : systems)
    AGORA_REQUIRE(s.size() == n, "all resource systems must cover the same sites");
  obs_decisions_ = &grm_opts_.sink.counter("rms.grm.decisions");
  obs_grants_ = &grm_opts_.sink.counter("rms.grm.grants");
  obs_forwards_ = &grm_opts_.sink.counter("rms.grm.forwards");
  obs_stale_masked_ = &grm_opts_.sink.counter("rms.grm.stale_masked");
  obs_duplicate_requests_ = &grm_opts_.sink.counter("rms.grm.duplicate_requests");
  obs_reserve_retries_ = &grm_opts_.sink.counter("rms.grm.reserve_retries");
  obs_reserve_failures_ = &grm_opts_.sink.counter("rms.grm.reserve_failures");
  obs_resyncs_ = &grm_opts_.sink.counter("rms.grm.resyncs");
  allocators_.reserve(systems.size());
  for (auto& s : systems) {
    known_.emplace_back(s.capacity);  // seed with declared capacities
    allocators_.push_back(make_allocator(std::move(s)));
  }
  lrm_endpoints_.assign(n, 0);
  lrm_known_.assign(n, false);
  reported_.assign(n, false);
  report_time_.assign(n, 0.0);
  report_seq_.assign(n, 0);
  endpoint_ = bus_.add_endpoint([this](const Envelope& env) { handle(env); });
}

void Grm::register_lrm(std::size_t site, EndpointId lrm) {
  AGORA_REQUIRE(site < lrm_endpoints_.size(), "unknown site");
  lrm_endpoints_[site] = lrm;
  lrm_known_[site] = true;
}

void Grm::set_scope(std::vector<std::size_t> sites, EndpointId parent) {
  scope_.assign(lrm_endpoints_.size(), false);
  for (std::size_t s : sites) {
    AGORA_REQUIRE(s < scope_.size(), "scope site out of range");
    scope_[s] = true;
  }
  parent_ = parent;
}

bool Grm::in_scope(std::size_t site) const { return scope_.empty() || scope_.at(site); }

void Grm::update_agreement(std::size_t resource, std::size_t from, std::size_t to,
                           double share) {
  AGORA_REQUIRE(resource < allocators_.size(), "unknown resource");
  // Rebuild the allocator with the updated matrix (agreement changes are
  // rare control-plane events; the closure recomputation is acceptable).
  agree::AgreementSystem sys = allocators_[resource]->system();
  AGORA_REQUIRE(from < sys.size() && to < sys.size() && from != to, "bad agreement endpoints");
  AGORA_REQUIRE(share >= 0.0, "share must be non-negative");
  sys.relative(from, to) = share;
  allocators_[resource] = make_allocator(std::move(sys));
}

double Grm::known_available(std::size_t site, std::size_t resource) const {
  AGORA_REQUIRE(resource < known_.size() && site < known_[resource].size(),
                "unknown site/resource");
  if (!lrm_known_[site] || !reported_[site]) {
    ++unknown_queries_;
    return 0.0;
  }
  return known_[resource][site];
}

void Grm::handle(const Envelope& env) {
  if (const auto* rep = std::get_if<AvailabilityReport>(&env.payload)) {
    AGORA_REQUIRE(rep->available.size() == allocators_.size(),
                  "availability report resource count mismatch");
    AGORA_REQUIRE(rep->lrm < lrm_endpoints_.size(), "availability report from unknown site");
    // Sequenced reports deduplicate and reject reordered stale data; an
    // unsequenced report (seq 0, e.g. hand-posted in tests) always lands.
    if (rep->report_seq != 0 && rep->report_seq <= report_seq_[rep->lrm]) {
      ++stale_reports_;
      return;
    }
    report_seq_[rep->lrm] = rep->report_seq;
    reported_[rep->lrm] = true;
    report_time_[rep->lrm] = bus_.now();
    for (std::size_t r = 0; r < allocators_.size(); ++r)
      known_[r][rep->lrm] = rep->available[r];
    return;
  }
  if (const auto* req = std::get_if<AllocationRequest>(&env.payload)) {
    decide(*req, env.from);
    return;
  }
  if (const auto* reply = std::get_if<AllocationReply>(&env.payload)) {
    // A reply from our parent for a forwarded request: relay it (and cache
    // it so a retried request is answered from here on).
    const auto it = forwarded_.find(reply->request_id);
    if (it != forwarded_.end()) {
      decided_[reply->request_id] = *reply;
      bus_.post(endpoint_, it->second, *reply, decision_latency_);
      forwarded_.erase(it);
    }
    return;
  }
  if (const auto* ack = std::get_if<Ack>(&env.payload)) {
    const auto it = reserve_tokens_.find({ack->request_id, ack->site});
    if (it != reserve_tokens_.end()) {
      pending_reserves_.erase(it->second);
      reserve_tokens_.erase(it);
    }
    return;
  }
  if (const auto* rs = std::get_if<LrmResync>(&env.payload)) {
    AGORA_REQUIRE(rs->available.size() == allocators_.size(),
                  "resync resource count mismatch");
    AGORA_REQUIRE(rs->lrm < lrm_endpoints_.size(), "resync from unknown site");
    ++resyncs_;
    obs_resyncs_->inc();
    grm_opts_.sink.event(bus_.now(), obs::EventKind::GrmResync,
                         static_cast<std::uint32_t>(endpoint_),
                         static_cast<std::uint32_t>(rs->lrm));
    reported_[rs->lrm] = true;
    report_time_[rs->lrm] = bus_.now();
    for (std::size_t r = 0; r < allocators_.size(); ++r)
      known_[r][rs->lrm] = rs->available[r];
    return;
  }
  if (const auto* timer = std::get_if<Timer>(&env.payload)) {
    on_timer(timer->token);
    return;
  }
  if (const auto* upd = std::get_if<AgreementUpdate>(&env.payload)) {
    update_agreement(upd->resource, upd->from, upd->to, upd->share);
    return;
  }
  // ReleaseNotice sent to a GRM is informational; availability arrives via
  // the LRM's follow-up report.
}

void Grm::decide(const AllocationRequest& req, EndpointId reply_to) {
  // Idempotency: a retried request that was already decided gets the same
  // reply again; one still in flight at the parent is simply ignored.
  if (const auto done = decided_.find(req.request_id); done != decided_.end()) {
    ++duplicate_requests_;
    obs_duplicate_requests_->inc();
    bus_.post(endpoint_, reply_to, done->second, decision_latency_);
    return;
  }
  if (forwarded_.count(req.request_id) != 0) {
    ++duplicate_requests_;
    obs_duplicate_requests_->inc();
    return;
  }

  ++decisions_;
  obs_decisions_->inc();
  AGORA_REQUIRE(req.amounts.size() == allocators_.size(),
                "request must name an amount per resource");
  AGORA_REQUIRE(req.principal < lrm_endpoints_.size(), "unknown principal");

  // Refresh allocators with the latest availability, masking out-of-scope
  // sites (a child GRM cannot spend capacity it does not manage) and --
  // graceful degradation -- sites whose availability we cannot trust:
  // never registered, or (under a finite staleness TTL) never reported or
  // last reported too long ago. Such sites contribute zero capacity, which
  // shrinks the LP's capacity bounds instead of allocating phantom
  // resources or tripping invariants downstream.
  const double now = bus_.now();
  const bool ttl_active = std::isfinite(grm_opts_.staleness_ttl);
  std::vector<bool> masked(lrm_endpoints_.size(), false);
  for (std::size_t s = 0; s < lrm_endpoints_.size(); ++s) {
    if (!lrm_known_[s]) masked[s] = true;
    else if (ttl_active &&
             (!reported_[s] || now - report_time_[s] > grm_opts_.staleness_ttl))
      masked[s] = true;
    if (masked[s]) {
      ++stale_masked_;
      obs_stale_masked_->inc();
    }
  }
  std::vector<std::vector<double>> caps(allocators_.size());
  for (std::size_t r = 0; r < allocators_.size(); ++r) {
    caps[r] = known_[r];
    for (std::size_t s = 0; s < caps[r].size(); ++s)
      if (masked[s] || (!scope_.empty() && !scope_[s])) caps[r][s] = 0.0;
    allocators_[r]->set_capacities(std::span<const double>(caps[r]));
  }

  // Solve the per-resource LPs.
  std::vector<alloc::AllocationPlan> plans(allocators_.size());
  bool ok = true;
  for (std::size_t r = 0; r < allocators_.size(); ++r) {
    plans[r] = allocators_[r]->allocate(req.principal, req.amounts[r]);
    ok = ok && plans[r].satisfied();
  }

  if (!ok) {
    if (parent_) {
      // Escalate: the parent sees the full system.
      ++forwards_;
      obs_forwards_->inc();
      forwarded_[req.request_id] = reply_to;
      bus_.post(endpoint_, *parent_, req, decision_latency_);
      return;
    }
    AllocationReply reply;
    reply.request_id = req.request_id;
    reply.granted = false;
    reply.reason = "insufficient capacity under agreements";
    finish(req, reply_to, std::move(reply));
    return;
  }

  // Commit: instruct every contributing LRM and update our book-keeping.
  ++grants_;
  obs_grants_->inc();
  const std::size_t n = lrm_endpoints_.size();
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> amounts(allocators_.size(), 0.0);
    double total = 0.0;
    for (std::size_t r = 0; r < allocators_.size(); ++r) {
      amounts[r] = plans[r].draw[s];
      total += amounts[r];
    }
    if (total <= 1e-12) continue;
    AGORA_REQUIRE(lrm_known_[s], "allocation draws on an unregistered LRM");
    ReserveCommand cmd;
    cmd.request_id = req.request_id;
    cmd.amounts = amounts;
    cmd.duration = req.duration;
    send_reserve(req.request_id, s, std::move(cmd));
    for (std::size_t r = 0; r < allocators_.size(); ++r) known_[r][s] -= amounts[r];
  }

  AllocationReply reply;
  reply.request_id = req.request_id;
  reply.granted = true;
  reply.draws.resize(allocators_.size());
  for (std::size_t r = 0; r < allocators_.size(); ++r) reply.draws[r] = plans[r].draw;
  finish(req, reply_to, std::move(reply));
}

void Grm::finish(const AllocationRequest& req, EndpointId reply_to, AllocationReply reply) {
  decided_[req.request_id] = reply;
  bus_.post(endpoint_, reply_to, std::move(reply), decision_latency_);
}

void Grm::send_reserve(std::uint64_t request_id, std::size_t site, ReserveCommand cmd) {
  if (grm_opts_.reserve_attempts > 1) {
    cmd.want_ack = true;
    const std::uint64_t token = next_token_++;
    pending_reserves_[token] =
        PendingReserve{cmd, site, /*attempts=*/1, grm_opts_.reserve_backoff};
    reserve_tokens_[{request_id, site}] = token;
    bus_.post(endpoint_, endpoint_, Timer{token}, grm_opts_.reserve_backoff);
  }
  bus_.post(endpoint_, lrm_endpoints_[site], std::move(cmd), decision_latency_);
}

void Grm::on_timer(std::uint64_t token) {
  const auto it = pending_reserves_.find(token);
  if (it == pending_reserves_.end()) return;  // acked in the meantime
  PendingReserve& pr = it->second;
  if (pr.attempts >= grm_opts_.reserve_attempts) {
    // Give up: the LRM is unreachable. The availability decrement stands
    // until the site's next report/resync reconciles it; count the loss.
    ++reserve_failures_;
    obs_reserve_failures_->inc();
    reserve_tokens_.erase({pr.cmd.request_id, pr.site});
    pending_reserves_.erase(it);
    return;
  }
  ++pr.attempts;
  ++reserve_retries_;
  obs_reserve_retries_->inc();
  grm_opts_.sink.event(bus_.now(), obs::EventKind::GrmReserveRetry,
                       static_cast<std::uint32_t>(endpoint_),
                       static_cast<std::uint32_t>(pr.site),
                       static_cast<double>(pr.attempts));
  pr.backoff = std::min(pr.backoff * 2.0, grm_opts_.reserve_backoff_cap);
  bus_.post(endpoint_, lrm_endpoints_[pr.site], pr.cmd, decision_latency_);
  bus_.post(endpoint_, endpoint_, Timer{token}, pr.backoff);
}

}  // namespace agora::rms
