#include "rms/grm.h"

namespace agora::rms {

namespace {

StateMachineOptions sm_options(const GrmOptions& g) {
  StateMachineOptions o;
  o.staleness_ttl = g.staleness_ttl;
  o.decided_cache_capacity = g.decided_cache_capacity;
  o.engine_threads = g.engine_threads;
  o.sink = g.sink;
  return o;
}

ReserveEmitterOptions emitter_options(const GrmOptions& g, double send_latency) {
  ReserveEmitterOptions o;
  o.attempts = g.reserve_attempts;
  o.backoff = g.reserve_backoff;
  o.backoff_cap = g.reserve_backoff_cap;
  o.jitter = g.reserve_jitter;
  o.jitter_seed = g.reserve_jitter_seed;
  o.send_latency = send_latency;
  o.sink = g.sink;
  return o;
}

}  // namespace

Grm::Grm(MessageBus& bus, std::vector<agree::AgreementSystem> systems,
         alloc::AllocatorOptions opts, double decision_latency, GrmOptions grm_opts)
    : bus_(bus),
      decision_latency_(decision_latency),
      grm_opts_(grm_opts),
      sm_(std::move(systems), opts, sm_options(grm_opts)),
      emitter_(bus, emitter_options(grm_opts, decision_latency)) {
  obs_forwards_ = &grm_opts_.sink.counter("rms.grm.forwards");
  lrm_endpoints_.assign(sm_.num_sites(), 0);
  endpoint_ = bus_.add_endpoint([this](const Envelope& env) { handle(env); });
  sm_.set_actor(static_cast<std::uint32_t>(endpoint_));
  emitter_.bind(endpoint_, &lrm_endpoints_);
}

void Grm::register_lrm(std::size_t site, EndpointId lrm) {
  sm_.register_site(site);  // validates the index
  lrm_endpoints_[site] = lrm;
}

void Grm::set_scope(std::vector<std::size_t> sites, EndpointId parent) {
  sm_.set_scope(sites);
  parent_ = parent;
}

void Grm::update_agreement(std::size_t resource, std::size_t from, std::size_t to,
                           double share) {
  sm_.apply_update(resource, from, to, share);
}

void Grm::handle(const Envelope& env) {
  if (const auto* rep = std::get_if<AvailabilityReport>(&env.payload)) {
    sm_.apply_report(*rep, bus_.now());
    return;
  }
  if (const auto* req = std::get_if<AllocationRequest>(&env.payload)) {
    decide(*req, env.from);
    return;
  }
  if (const auto* reply = std::get_if<AllocationReply>(&env.payload)) {
    // A reply from our parent for a forwarded request: relay it (and cache
    // it so a retried request is answered from here on).
    const auto it = forwarded_.find(reply->request_id);
    if (it != forwarded_.end()) {
      sm_.record(reply->request_id, *reply);
      bus_.post(endpoint_, it->second, *reply, decision_latency_);
      forwarded_.erase(it);
    }
    return;
  }
  if (const auto* ack = std::get_if<Ack>(&env.payload)) {
    emitter_.on_ack(ack->request_id, ack->site);
    return;
  }
  if (const auto* rs = std::get_if<LrmResync>(&env.payload)) {
    sm_.apply_resync(*rs, bus_.now());
    return;
  }
  if (const auto* timer = std::get_if<Timer>(&env.payload)) {
    emitter_.on_timer(timer->token);
    return;
  }
  if (const auto* upd = std::get_if<AgreementUpdate>(&env.payload)) {
    update_agreement(upd->resource, upd->from, upd->to, upd->share);
    return;
  }
  // ReleaseNotice sent to a GRM is informational; availability arrives via
  // the LRM's follow-up report. Replication traffic is not for a plain Grm.
}

void Grm::decide(const AllocationRequest& req, EndpointId reply_to) {
  // Idempotency: a retried request that is still in flight at the parent is
  // simply ignored (its eventual reply is relayed and cached); one already
  // decided is answered from the cache inside the state machine.
  if (forwarded_.count(req.request_id) != 0) {
    sm_.note_duplicate();
    return;
  }
  GrmStateMachine::Decision d =
      sm_.decide(req, bus_.now(), /*record_denial=*/!parent_.has_value());
  switch (d.kind) {
    case GrmStateMachine::Decision::Kind::Unsatisfied:
      // Escalate: the parent sees the full system.
      ++forwards_;
      obs_forwards_->inc();
      forwarded_[req.request_id] = reply_to;
      bus_.post(endpoint_, *parent_, req, decision_latency_);
      return;
    case GrmStateMachine::Decision::Kind::Granted:
      for (auto& [site, cmd] : d.reserves) emitter_.send(req.request_id, site, std::move(cmd));
      break;
    case GrmStateMachine::Decision::Kind::Duplicate:
    case GrmStateMachine::Decision::Kind::Denied:
      break;
  }
  bus_.post(endpoint_, reply_to, std::move(d.reply), decision_latency_);
}

}  // namespace agora::rms
