// bus.h -- an in-process, virtual-time message bus connecting GRMs, LRMs
// and clients. Messages are delivered in timestamp order with configurable
// latency, which is what makes the GRM/LRM interaction a *simulation* of the
// distributed deployment the paper sketches rather than a thin function
// call: availability reports can be stale, decisions can cross in flight.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "rms/messages.h"
#include "util/error.h"

namespace agora::rms {

using EndpointId = std::size_t;

struct Envelope {
  double deliver_at = 0.0;
  std::uint64_t seq = 0;
  EndpointId from = 0;
  EndpointId to = 0;
  Payload payload;
};

class MessageBus {
 public:
  using Handler = std::function<void(const Envelope&)>;

  /// Register an endpoint; the handler runs when messages are delivered.
  EndpointId add_endpoint(Handler handler);

  /// Post a message for delivery after `latency` seconds of virtual time.
  void post(EndpointId from, EndpointId to, Payload payload, double latency = 0.0);

  /// Deliver the next message (advancing virtual time). False when idle.
  bool step();

  /// Deliver until the queue drains. Returns messages delivered. Throws
  /// InternalError past `max_messages` (runaway protection).
  std::size_t run_until_idle(std::size_t max_messages = 1000000);

  /// Deliver every message scheduled at or before virtual time `t`.
  /// Returns messages delivered; leaves later messages queued.
  std::size_t run_until(double t);

  /// Delivery time of the next queued message (NaN when idle).
  double next_time() const;

  double now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t delivered() const { return delivered_; }

 private:
  struct Later {
    bool operator()(const Envelope& a, const Envelope& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  std::vector<Handler> endpoints_;
  std::priority_queue<Envelope, std::vector<Envelope>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace agora::rms
