// bus.h -- an in-process, virtual-time message bus connecting GRMs, LRMs
// and clients. Messages are delivered in timestamp order with configurable
// latency, which is what makes the GRM/LRM interaction a *simulation* of the
// distributed deployment the paper sketches rather than a thin function
// call: availability reports can be stale, decisions can cross in flight.
//
// An optional FaultPlan (see fault.h) turns the bus into an unreliable
// substrate: seeded per-link drops/duplicates/jitter, scheduled partitions
// and endpoint crash/restart windows. Without a plan (or with an inert
// default-constructed one) the bus behaves exactly like the seed bus.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/sink.h"
#include "rms/fault.h"
#include "rms/messages.h"
#include "util/error.h"
#include "util/rng.h"

namespace agora::rms {

struct Envelope {
  double deliver_at = 0.0;
  std::uint64_t seq = 0;
  EndpointId from = 0;
  EndpointId to = 0;
  Payload payload;
};

/// What one run_until_idle drain did, including the fault layer's share --
/// a drain that delivered nothing because everything was dropped is very
/// different from a drain that had nothing to do. Fault counters cover
/// everything since the previous drain (drops happen at post time, i.e.
/// between drains, as well as at delivery time).
struct QuiesceStats {
  std::size_t delivered = 0;   ///< messages handed to endpoint handlers
  std::size_t dropped = 0;     ///< lost to the fault layer since the last drain
  std::size_t duplicated = 0;  ///< extra copies injected since the last drain
};

class MessageBus {
 public:
  using Handler = std::function<void(const Envelope&)>;
  using RestartHandler = std::function<void()>;

  MessageBus();

  /// Register an endpoint; the handler runs when messages are delivered.
  EndpointId add_endpoint(Handler handler);

  /// Called when `endpoint` comes back up at the end of a crash window
  /// (e.g. an LRM re-announcing its availability and reservations).
  void set_restart_handler(EndpointId endpoint, RestartHandler handler);

  /// Install (or replace) the fault plan. Validates the plan; an inert
  /// plan (FaultPlan{}) disables the fault layer entirely.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// Route telemetry (delivery/fault counters, BusFault* trace events with
  /// time = bus virtual time) to `sink`. Default: the process-global sink.
  void set_sink(obs::Sink sink);

  /// Post a message for delivery after `latency` seconds of virtual time.
  void post(EndpointId from, EndpointId to, Payload payload, double latency = 0.0);

  /// Process the next event (advancing virtual time): deliver a message,
  /// lose it to a crash/partition, or fire a restart. False when idle.
  bool step();

  /// Deliver until the queue drains. Returns the drain's accounting.
  /// Throws InternalError past `max_messages` events (runaway protection).
  QuiesceStats run_until_idle(std::size_t max_messages = 1000000);

  /// Process every event scheduled at or before virtual time `t`, then
  /// advance the clock to `t` (so now() == t afterwards even if the last
  /// event landed earlier). Returns events processed; leaves later
  /// messages queued.
  std::size_t run_until(double t);

  /// Delivery time of the next queued message (NaN when idle).
  double next_time() const;

  double now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t delivered() const { return delivered_; }

  /// Cumulative fault-layer accounting (all zero without a fault plan).
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t lost_to_crash() const { return lost_crash_; }
  std::uint64_t lost_to_partition() const { return lost_partition_; }

 private:
  struct Later {
    bool operator()(const Envelope& a, const Envelope& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  /// Time of the next event of any kind (message or restart); NaN if none.
  double next_event_time() const;
  bool restart_pending() const { return next_restart_ < restarts_.size(); }

  std::vector<Handler> endpoints_;
  std::vector<RestartHandler> restart_handlers_;
  std::priority_queue<Envelope, std::vector<Envelope>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t delivered_ = 0;

  /// Fault layer.
  bool fault_active_ = false;
  FaultPlan plan_;
  Pcg32 rng_;
  std::vector<std::pair<double, EndpointId>> restarts_;  ///< sorted by time
  std::size_t next_restart_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t lost_crash_ = 0;
  std::uint64_t lost_partition_ = 0;
  /// Fault counters as of the end of the previous run_until_idle drain.
  std::uint64_t drain_dropped_ = 0;
  std::uint64_t drain_duplicated_ = 0;

  /// Telemetry. Handles are resolved in the constructor (and again by
  /// set_sink); posting/stepping only bumps atomics.
  obs::Sink sink_ = obs::Sink::global();
  obs::Counter* obs_delivered_ = nullptr;
  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_duplicated_ = nullptr;
  obs::Counter* obs_lost_crash_ = nullptr;
  obs::Counter* obs_lost_partition_ = nullptr;
};

}  // namespace agora::rms
