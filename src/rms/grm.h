// grm.h -- Global Resource Manager: the centralized scheduler holding the
// sharing agreements and the latest availability reports, deciding
// allocations with the Section-3 LP model.
//
// The GRM is an endpoint on the message bus. It supports:
//   * agreement management (AgreementUpdate messages and direct API),
//   * availability tracking (AvailabilityReport from LRMs),
//   * allocation (AllocationRequest -> LP decision -> ReserveCommands to
//     the contributing LRMs -> AllocationReply to the requesting client).
//
// GRMs can form a hierarchy ("the architecture also permits splitting of
// the GRMs into multiple levels, each responsible for a subset of the
// LRMs"): a child GRM that cannot satisfy a request within its subset
// forwards it to its parent, which sees the whole system.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.h"
#include "rms/bus.h"
#include "rms/messages.h"

namespace agora::rms {

class Grm {
 public:
  /// One AgreementSystem per resource; all must cover the same principals.
  /// `decision_latency` models GRM compute + network delay per decision.
  Grm(MessageBus& bus, std::vector<agree::AgreementSystem> systems,
      alloc::AllocatorOptions opts = {}, double decision_latency = 0.0);

  EndpointId endpoint() const { return endpoint_; }
  std::size_t num_resources() const { return allocators_.size(); }
  std::size_t num_sites() const { return lrm_endpoints_.size(); }

  /// Wire up an LRM to a principal index.
  void register_lrm(std::size_t site, EndpointId lrm);

  /// Restrict this GRM to a subset of sites and give it a parent to
  /// escalate to. Requests involving capacity outside the subset are
  /// forwarded to the parent.
  void set_scope(std::vector<std::size_t> sites, EndpointId parent);

  /// Agreement management service (also reachable via AgreementUpdate).
  void update_agreement(std::size_t resource, std::size_t from, std::size_t to, double share);

  /// Latest known availability of site `i` for resource r.
  double known_available(std::size_t site, std::size_t resource) const;

  /// Statistics.
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t grants() const { return grants_; }
  std::uint64_t forwards() const { return forwards_; }

 private:
  void handle(const Envelope& env);
  void decide(const AllocationRequest& req, EndpointId reply_to);
  bool in_scope(std::size_t site) const;

  MessageBus& bus_;
  EndpointId endpoint_;
  double decision_latency_;
  alloc::AllocatorOptions opts_;
  std::vector<alloc::Allocator> allocators_;
  std::vector<std::vector<double>> known_;  ///< [resource][site]
  std::vector<EndpointId> lrm_endpoints_;
  std::vector<bool> lrm_known_;
  /// Hierarchy.
  std::vector<bool> scope_;  ///< empty = all sites
  std::optional<EndpointId> parent_;
  /// Requests forwarded to the parent: remember who to reply to.
  std::unordered_map<std::uint64_t, EndpointId> forwarded_;
  std::uint64_t decisions_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t forwards_ = 0;
};

}  // namespace agora::rms
