// grm.h -- Global Resource Manager: the centralized scheduler holding the
// sharing agreements and the latest availability reports, deciding
// allocations with the Section-3 LP model.
//
// The GRM is an endpoint on the message bus. It supports:
//   * agreement management (AgreementUpdate messages and direct API),
//   * availability tracking (AvailabilityReport from LRMs),
//   * allocation (AllocationRequest -> LP decision -> ReserveCommands to
//     the contributing LRMs -> AllocationReply to the requesting client).
//
// GRMs can form a hierarchy ("the architecture also permits splitting of
// the GRMs into multiple levels, each responsible for a subset of the
// LRMs"): a child GRM that cannot satisfy a request within its subset
// forwards it to its parent, which sees the whole system.
//
// Hardening against an unreliable bus (see fault.h / DESIGN.md "Failure
// model"): requests are idempotent (decided replies are cached and
// re-sent on duplicates), availability reports are deduplicated by
// sequence number, reports older than a staleness TTL contribute zero
// capacity (graceful degradation instead of allocating phantom
// resources), and reserve commands can be retried with exponential
// backoff until acknowledged. All of it is off by default: a
// default-constructed GrmOptions reproduces the seed message trace.
//
// The decision core itself lives in replica/state_machine.h; this class is
// the single-instance bus wrapper around it. For a GRM that survives its
// own death, run N replicas of the same state machine under the quorum log
// in replica/raft.h + replica/group.h (GrmOptions::replication).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.h"
#include "rms/bus.h"
#include "rms/messages.h"
#include "rms/replica/state_machine.h"
#include "rms/reserve_emitter.h"

namespace agora::rms {

/// Quorum-log replication settings (used by replica::ReplicatedGrm; a plain
/// Grm ignores them). All times are bus virtual seconds.
struct ReplicationOptions {
  /// Number of GRM replicas. 1 keeps a single (unreplicated) instance.
  std::size_t replicas = 1;
  /// Election timeout drawn uniformly from [min, max) per replica per term
  /// (randomized-but-seeded, so elections rarely split and runs replay).
  double election_timeout_min = 1.0;
  double election_timeout_max = 2.0;
  /// Leader heartbeat (empty AppendEntries) interval; must be well under
  /// the election timeout.
  double heartbeat_interval = 0.25;
  /// Replica <-> replica message latency.
  double latency = 0.01;
  /// Seed for the per-replica election-timeout streams.
  std::uint64_t seed = 1;
  /// Applied entries retained before the log is compacted into a snapshot
  /// (restarted/lagging replicas past the compaction point catch up via
  /// InstallSnapshot).
  std::size_t snapshot_threshold = 256;
};

struct GrmOptions {
  /// Availability reports older than this many bus-seconds are treated as
  /// unknown: the site contributes zero capacity to decisions (shrinking
  /// the LP's capacity bounds) until a fresh report or resync arrives.
  /// Infinity disables staleness masking (seed behavior). A finite TTL
  /// also masks sites that have never reported at all.
  double staleness_ttl = std::numeric_limits<double>::infinity();
  /// Delivery attempts per ReserveCommand. 1 = fire-and-forget with no
  /// Ack traffic (seed behavior); >1 sets want_ack and retries with
  /// exponential backoff until acknowledged or attempts are exhausted.
  int reserve_attempts = 1;
  double reserve_backoff = 0.25;     ///< initial retry spacing (doubles)
  double reserve_backoff_cap = 2.0;  ///< backoff ceiling
  /// Seeded jitter fraction on reserve retry backoff (0 = seed behavior):
  /// each wait becomes backoff * (1 + jitter * U[0,1)), decorrelating the
  /// retry storms that otherwise follow a partition heal.
  double reserve_jitter = 0.0;
  std::uint64_t reserve_jitter_seed = 1;
  /// Bound on the idempotent decided-reply cache (0 = unbounded). Evicted
  /// in decision order (FIFO -- deterministic across replicas) and counted
  /// as rms.grm.decided_evictions.
  std::size_t decided_cache_capacity = 65536;
  /// Telemetry (decision counters, GrmReserveRetry/GrmResync events
  /// stamped with bus virtual time). Also forwarded into the allocators'
  /// AllocatorOptions unless those carry their own non-global sink.
  obs::Sink sink = obs::Sink::global();
  /// Per-resource decision backend: 0 (default) consults an in-process
  /// Allocator directly (seed behavior); >= 1 fronts each resource with a
  /// sharded engine::EnforcementEngine running this many worker threads.
  /// threads=1 is decision-identical to the direct path.
  std::size_t engine_threads = 0;
  /// Replication (replica::ReplicatedGrm only; ignored by a plain Grm).
  ReplicationOptions replication;
};

class Grm {
 public:
  /// One AgreementSystem per resource; all must cover the same principals.
  /// `decision_latency` models GRM compute + network delay per decision.
  Grm(MessageBus& bus, std::vector<agree::AgreementSystem> systems,
      alloc::AllocatorOptions opts = {}, double decision_latency = 0.0,
      GrmOptions grm_opts = {});

  EndpointId endpoint() const { return endpoint_; }
  std::size_t num_resources() const { return sm_.num_resources(); }
  std::size_t num_sites() const { return lrm_endpoints_.size(); }

  /// Wire up an LRM to a principal index.
  void register_lrm(std::size_t site, EndpointId lrm);

  /// Restrict this GRM to a subset of sites and give it a parent to
  /// escalate to. Requests involving capacity outside the subset are
  /// forwarded to the parent.
  void set_scope(std::vector<std::size_t> sites, EndpointId parent);

  /// Agreement management service (also reachable via AgreementUpdate).
  void update_agreement(std::size_t resource, std::size_t from, std::size_t to, double share);

  /// Latest known availability of site `i` for resource r. Returns 0 (and
  /// counts the query) for a site that is unregistered or has never sent
  /// an AvailabilityReport, instead of exposing the seeded declared
  /// capacity as if it had been observed.
  double known_available(std::size_t site, std::size_t resource) const {
    return sm_.known_available(site, resource);
  }

  /// Statistics.
  std::uint64_t decisions() const { return sm_.decisions(); }
  std::uint64_t grants() const { return sm_.grants(); }
  std::uint64_t forwards() const { return forwards_; }
  /// Degradation/robustness statistics.
  std::uint64_t unknown_queries() const { return sm_.unknown_queries(); }
  std::uint64_t stale_masked() const { return sm_.stale_masked(); }
  std::uint64_t duplicate_requests() const { return sm_.duplicate_requests(); }
  std::uint64_t stale_reports() const { return sm_.stale_reports(); }
  std::uint64_t reserve_retries() const { return emitter_.retries(); }
  std::uint64_t reserve_failures() const { return emitter_.failures(); }
  std::uint64_t resyncs() const { return sm_.resyncs(); }
  std::uint64_t decided_evictions() const { return sm_.decided_evictions(); }
  std::size_t decided_cached() const { return sm_.decided_size(); }

  /// The decision core (e.g. for digest comparisons in tests).
  const GrmStateMachine& machine() const { return sm_; }

 private:
  void handle(const Envelope& env);
  void decide(const AllocationRequest& req, EndpointId reply_to);

  MessageBus& bus_;
  EndpointId endpoint_;
  double decision_latency_;
  GrmOptions grm_opts_;
  GrmStateMachine sm_;
  ReserveEmitter emitter_;
  std::vector<EndpointId> lrm_endpoints_;
  std::optional<EndpointId> parent_;
  /// Requests forwarded to the parent: remember who to reply to.
  std::unordered_map<std::uint64_t, EndpointId> forwarded_;
  std::uint64_t forwards_ = 0;
  obs::Counter* obs_forwards_ = nullptr;
};

}  // namespace agora::rms
