// grm.h -- Global Resource Manager: the centralized scheduler holding the
// sharing agreements and the latest availability reports, deciding
// allocations with the Section-3 LP model.
//
// The GRM is an endpoint on the message bus. It supports:
//   * agreement management (AgreementUpdate messages and direct API),
//   * availability tracking (AvailabilityReport from LRMs),
//   * allocation (AllocationRequest -> LP decision -> ReserveCommands to
//     the contributing LRMs -> AllocationReply to the requesting client).
//
// GRMs can form a hierarchy ("the architecture also permits splitting of
// the GRMs into multiple levels, each responsible for a subset of the
// LRMs"): a child GRM that cannot satisfy a request within its subset
// forwards it to its parent, which sees the whole system.
//
// Hardening against an unreliable bus (see fault.h / DESIGN.md "Failure
// model"): requests are idempotent (decided replies are cached and
// re-sent on duplicates), availability reports are deduplicated by
// sequence number, reports older than a staleness TTL contribute zero
// capacity (graceful degradation instead of allocating phantom
// resources), and reserve commands can be retried with exponential
// backoff until acknowledged. All of it is off by default: a
// default-constructed GrmOptions reproduces the seed message trace.
#pragma once

#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.h"
#include "rms/bus.h"
#include "rms/messages.h"

namespace agora::rms {

struct GrmOptions {
  /// Availability reports older than this many bus-seconds are treated as
  /// unknown: the site contributes zero capacity to decisions (shrinking
  /// the LP's capacity bounds) until a fresh report or resync arrives.
  /// Infinity disables staleness masking (seed behavior). A finite TTL
  /// also masks sites that have never reported at all.
  double staleness_ttl = std::numeric_limits<double>::infinity();
  /// Delivery attempts per ReserveCommand. 1 = fire-and-forget with no
  /// Ack traffic (seed behavior); >1 sets want_ack and retries with
  /// exponential backoff until acknowledged or attempts are exhausted.
  int reserve_attempts = 1;
  double reserve_backoff = 0.25;     ///< initial retry spacing (doubles)
  double reserve_backoff_cap = 2.0;  ///< backoff ceiling
  /// Telemetry (decision counters, GrmReserveRetry/GrmResync events
  /// stamped with bus virtual time). Also forwarded into the allocators'
  /// AllocatorOptions unless those carry their own non-global sink.
  obs::Sink sink = obs::Sink::global();
  /// Per-resource decision backend: 0 (default) consults an in-process
  /// Allocator directly (seed behavior); >= 1 fronts each resource with a
  /// sharded engine::EnforcementEngine running this many worker threads.
  /// threads=1 is decision-identical to the direct path.
  std::size_t engine_threads = 0;
};

class Grm {
 public:
  /// One AgreementSystem per resource; all must cover the same principals.
  /// `decision_latency` models GRM compute + network delay per decision.
  Grm(MessageBus& bus, std::vector<agree::AgreementSystem> systems,
      alloc::AllocatorOptions opts = {}, double decision_latency = 0.0,
      GrmOptions grm_opts = {});

  EndpointId endpoint() const { return endpoint_; }
  std::size_t num_resources() const { return allocators_.size(); }
  std::size_t num_sites() const { return lrm_endpoints_.size(); }

  /// Wire up an LRM to a principal index.
  void register_lrm(std::size_t site, EndpointId lrm);

  /// Restrict this GRM to a subset of sites and give it a parent to
  /// escalate to. Requests involving capacity outside the subset are
  /// forwarded to the parent.
  void set_scope(std::vector<std::size_t> sites, EndpointId parent);

  /// Agreement management service (also reachable via AgreementUpdate).
  void update_agreement(std::size_t resource, std::size_t from, std::size_t to, double share);

  /// Latest known availability of site `i` for resource r. Returns 0 (and
  /// counts the query) for a site that is unregistered or has never sent
  /// an AvailabilityReport, instead of exposing the seeded declared
  /// capacity as if it had been observed.
  double known_available(std::size_t site, std::size_t resource) const;

  /// Statistics.
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t grants() const { return grants_; }
  std::uint64_t forwards() const { return forwards_; }
  /// Degradation/robustness statistics.
  std::uint64_t unknown_queries() const { return unknown_queries_; }
  std::uint64_t stale_masked() const { return stale_masked_; }
  std::uint64_t duplicate_requests() const { return duplicate_requests_; }
  std::uint64_t stale_reports() const { return stale_reports_; }
  std::uint64_t reserve_retries() const { return reserve_retries_; }
  std::uint64_t reserve_failures() const { return reserve_failures_; }
  std::uint64_t resyncs() const { return resyncs_; }

 private:
  void handle(const Envelope& env);
  void decide(const AllocationRequest& req, EndpointId reply_to);
  void finish(const AllocationRequest& req, EndpointId reply_to, AllocationReply reply);
  void send_reserve(std::uint64_t request_id, std::size_t site, ReserveCommand cmd);
  void on_timer(std::uint64_t token);
  bool in_scope(std::size_t site) const;
  /// Build one resource's decision backend: a direct Allocator, or an
  /// EnforcementEngine fronting it when grm_opts_.engine_threads >= 1.
  std::unique_ptr<alloc::AllocatorBase> make_allocator(agree::AgreementSystem sys) const;

  MessageBus& bus_;
  EndpointId endpoint_;
  double decision_latency_;
  alloc::AllocatorOptions opts_;
  GrmOptions grm_opts_;
  /// One decision backend per resource, behind the unified interface
  /// (engine-fronted when GrmOptions::engine_threads >= 1).
  std::vector<std::unique_ptr<alloc::AllocatorBase>> allocators_;
  std::vector<std::vector<double>> known_;  ///< [resource][site]
  std::vector<EndpointId> lrm_endpoints_;
  std::vector<bool> lrm_known_;
  /// Report bookkeeping: has the site ever reported, when, and with what
  /// sequence number (duplicate/reorder suppression).
  std::vector<bool> reported_;
  std::vector<double> report_time_;
  std::vector<std::uint64_t> report_seq_;
  /// Hierarchy.
  std::vector<bool> scope_;  ///< empty = all sites
  std::optional<EndpointId> parent_;
  /// Requests forwarded to the parent: remember who to reply to.
  std::unordered_map<std::uint64_t, EndpointId> forwarded_;
  /// Idempotency: every decided request keeps its final reply so retried
  /// requests re-send it instead of re-deciding (prevents double grants).
  std::unordered_map<std::uint64_t, AllocationReply> decided_;
  /// Un-acked reserve commands awaiting retry (only when reserve_attempts
  /// > 1): timer token -> command, plus a (request, site) -> token index.
  struct PendingReserve {
    ReserveCommand cmd;
    std::size_t site = 0;
    int attempts = 0;
    double backoff = 0.0;
  };
  std::unordered_map<std::uint64_t, PendingReserve> pending_reserves_;
  std::map<std::pair<std::uint64_t, std::size_t>, std::uint64_t> reserve_tokens_;
  std::uint64_t next_token_ = 1;
  std::uint64_t decisions_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t forwards_ = 0;
  mutable std::uint64_t unknown_queries_ = 0;
  std::uint64_t stale_masked_ = 0;
  std::uint64_t duplicate_requests_ = 0;
  std::uint64_t stale_reports_ = 0;
  std::uint64_t reserve_retries_ = 0;
  std::uint64_t reserve_failures_ = 0;
  std::uint64_t resyncs_ = 0;
  /// Cached registry handles (see obs/metrics.h).
  obs::Counter* obs_decisions_ = nullptr;
  obs::Counter* obs_grants_ = nullptr;
  obs::Counter* obs_forwards_ = nullptr;
  obs::Counter* obs_stale_masked_ = nullptr;
  obs::Counter* obs_duplicate_requests_ = nullptr;
  obs::Counter* obs_reserve_retries_ = nullptr;
  obs::Counter* obs_reserve_failures_ = nullptr;
  obs::Counter* obs_resyncs_ = nullptr;
};

}  // namespace agora::rms
