// client.h -- RequestClient: the client half of the hardened allocation
// protocol. Wraps a bus endpoint that submits AllocationRequests to a GRM,
// retries with exponential backoff while the network eats messages, and
// guarantees exactly one final AllocationReply per request: either the
// GRM's decision (duplicates from retries are suppressed) or, once the
// request's deadline passes, a synthesized denial with a reason -- a
// request never hangs.
//
// Against a replicated GRM (replica/group.h) the client takes the full
// list of replica endpoints and discovers the leader on the fly: a
// NotLeader redirect re-targets it (resending immediately when the
// follower names the leader), and a retry that got no response at all
// fails over to the next replica round-robin -- so a leader crash costs
// the client one backoff interval plus an election, not its deadline.
#pragma once

#include <limits>
#include <unordered_map>
#include <vector>

#include "obs/sink.h"
#include "rms/bus.h"
#include "rms/messages.h"
#include "util/rng.h"

namespace agora::rms {

struct ClientOptions {
  /// Total send attempts per request (1 = no retries, seed behavior).
  int max_attempts = 1;
  double retry_backoff = 0.5;   ///< initial spacing between attempts (doubles)
  double backoff_cap = 4.0;     ///< backoff ceiling
  /// Seeded jitter fraction on the retry backoff (0 = seed behavior): each
  /// wait becomes backoff * (1 + jitter * U[0,1)). Decorrelates the retry
  /// storms a fleet of clients would otherwise synchronize on after a
  /// partition heals -- every client retries on the same exponential
  /// schedule unless something breaks the symmetry.
  double retry_jitter = 0.0;
  std::uint64_t retry_jitter_seed = 1;
  /// Seconds after submission at which an unanswered request is resolved
  /// locally as denied ("deadline exceeded"). Infinity = wait forever.
  double deadline = std::numeric_limits<double>::infinity();
  double send_latency = 0.0;    ///< client -> GRM network delay
  /// Telemetry (retry/deadline counters, GrmRetry/ClientDeadline/
  /// ClientRedirect events stamped with bus virtual time).
  obs::Sink sink = obs::Sink::global();
};

class RequestClient {
 public:
  /// A resolved request: the final reply plus its timing, in virtual time.
  struct Outcome {
    AllocationReply reply;
    double submitted_at = 0.0;
    double resolved_at = 0.0;
    double latency() const { return resolved_at - submitted_at; }
  };

  RequestClient(MessageBus& bus, EndpointId grm, ClientOptions opts = {});
  /// Replicated-service client: `targets` are the GRM replica endpoints
  /// (replica::ReplicatedGrm::endpoints()). Requests go to the believed
  /// leader; NotLeader redirects and no-response failover walk the list.
  RequestClient(MessageBus& bus, std::vector<EndpointId> targets, ClientOptions opts = {});

  EndpointId endpoint() const { return endpoint_; }
  /// The endpoint requests are currently sent to (the believed leader).
  EndpointId target() const { return targets_[target_]; }

  /// Submit a request (request_id must be unused). Returns the id.
  std::uint64_t submit(AllocationRequest req);

  bool resolved(std::uint64_t request_id) const;
  /// The final outcome for a resolved request (throws if unresolved).
  const Outcome& outcome(std::uint64_t request_id) const;
  /// All outcomes in resolution order.
  const std::vector<Outcome>& outcomes() const { return order_; }
  std::size_t outstanding() const { return pending_.size(); }

  /// Robustness statistics.
  std::uint64_t retries() const { return retries_; }
  std::uint64_t deadline_denials() const { return deadline_denials_; }
  std::uint64_t duplicate_replies() const { return duplicate_replies_; }
  std::uint64_t redirects() const { return redirects_; }
  std::uint64_t failovers() const { return failovers_; }

 private:
  struct Pending {
    AllocationRequest req;
    double submitted_at = 0.0;
    double deadline_at = 0.0;
    int attempts = 0;
    double backoff = 0.0;
    /// Index into targets_ of the last send (failover detection).
    std::size_t sent_to = 0;
    /// Did any response (reply or redirect) arrive since the last send?
    bool responded = false;
    /// Redirect-driven immediate resends this attempt (bounded so stale
    /// cross-pointing leader hints cannot ping-pong forever).
    int redirect_sends = 0;
  };

  void handle(const Envelope& env);
  void on_timer(std::uint64_t token);
  void on_not_leader(const NotLeader& nl);
  void send(Pending& p);
  void schedule_wakeup(std::uint64_t request_id, double delay);
  double jittered(double delay);
  void finalize(std::uint64_t request_id, AllocationReply reply);

  MessageBus& bus_;
  EndpointId endpoint_;
  std::vector<EndpointId> targets_;  ///< candidate GRM endpoints
  std::size_t target_ = 0;           ///< current (believed-leader) index
  ClientOptions opts_;
  Pcg32 rng_;
  std::unordered_map<std::uint64_t, Pending> pending_;   ///< by request_id
  std::unordered_map<std::uint64_t, std::uint64_t> timer_targets_;  ///< token -> id
  std::unordered_map<std::uint64_t, std::size_t> done_;  ///< id -> order_ index
  std::vector<Outcome> order_;
  std::uint64_t next_token_ = 1;
  std::uint64_t retries_ = 0;
  std::uint64_t deadline_denials_ = 0;
  std::uint64_t duplicate_replies_ = 0;
  std::uint64_t redirects_ = 0;
  std::uint64_t failovers_ = 0;
  /// Cached registry handles (see obs/metrics.h).
  obs::Counter* obs_retries_ = nullptr;
  obs::Counter* obs_deadline_denials_ = nullptr;
  obs::Counter* obs_duplicate_replies_ = nullptr;
  obs::Counter* obs_redirects_ = nullptr;
  obs::Counter* obs_failovers_ = nullptr;
  obs::LogHistogram* obs_latency_ = nullptr;
};

}  // namespace agora::rms
