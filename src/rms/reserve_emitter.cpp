#include "rms/reserve_emitter.h"

#include <algorithm>

namespace agora::rms {

ReserveEmitter::ReserveEmitter(MessageBus& bus, ReserveEmitterOptions opts)
    : bus_(bus), opts_(opts), rng_(opts.jitter_seed, 0x5e5e), next_token_(opts.first_token) {
  AGORA_REQUIRE(opts_.attempts >= 1, "need at least one reserve attempt");
  AGORA_REQUIRE(opts_.backoff > 0.0 && opts_.backoff_cap > 0.0,
                "reserve backoff must be positive");
  AGORA_REQUIRE(opts_.jitter >= 0.0, "jitter must be non-negative");
  AGORA_REQUIRE(opts_.token_stride >= 1, "token stride must be positive");
  obs_retries_ = &opts_.sink.counter("rms.grm.reserve_retries");
  obs_failures_ = &opts_.sink.counter("rms.grm.reserve_failures");
}

void ReserveEmitter::bind(EndpointId self, const std::vector<EndpointId>* lrm_endpoints) {
  self_ = self;
  lrm_endpoints_ = lrm_endpoints;
}

double ReserveEmitter::jittered(double delay) {
  // The RNG is consulted only when jitter is on, so jitter-off message
  // traces are bit-identical to the pre-jitter protocol.
  if (opts_.jitter <= 0.0) return delay;
  return delay * (1.0 + opts_.jitter * rng_.next_double());
}

void ReserveEmitter::send(std::uint64_t request_id, std::size_t site, ReserveCommand cmd) {
  AGORA_REQUIRE(lrm_endpoints_ != nullptr && site < lrm_endpoints_->size(),
                "reserve for an unknown site");
  if (opts_.attempts > 1) {
    cmd.want_ack = true;
    const std::uint64_t token = next_token_;
    next_token_ += opts_.token_stride;
    pending_[token] = PendingReserve{cmd, site, /*attempts=*/1, opts_.backoff};
    tokens_[{request_id, site}] = token;
    bus_.post(self_, self_, Timer{token}, jittered(opts_.backoff));
  }
  bus_.post(self_, (*lrm_endpoints_)[site], std::move(cmd), opts_.send_latency);
}

void ReserveEmitter::on_ack(std::uint64_t request_id, std::size_t site) {
  const auto it = tokens_.find({request_id, site});
  if (it == tokens_.end()) return;
  pending_.erase(it->second);
  tokens_.erase(it);
}

bool ReserveEmitter::on_timer(std::uint64_t token) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return false;  // acked/abandoned in the meantime
  PendingReserve& pr = it->second;
  if (pr.attempts >= opts_.attempts) {
    // Give up: the LRM is unreachable. The availability decrement stands
    // until the site's next report/resync reconciles it; count the loss.
    ++failures_;
    obs_failures_->inc();
    tokens_.erase({pr.cmd.request_id, pr.site});
    pending_.erase(it);
    return true;
  }
  ++pr.attempts;
  ++retries_;
  obs_retries_->inc();
  opts_.sink.event(bus_.now(), obs::EventKind::GrmReserveRetry,
                   static_cast<std::uint32_t>(self_), static_cast<std::uint32_t>(pr.site),
                   static_cast<double>(pr.attempts));
  pr.backoff = std::min(pr.backoff * 2.0, opts_.backoff_cap);
  bus_.post(self_, (*lrm_endpoints_)[pr.site], pr.cmd, opts_.send_latency);
  bus_.post(self_, self_, Timer{token}, jittered(pr.backoff));
  return true;
}

void ReserveEmitter::abandon_all() {
  abandoned_ += pending_.size();
  pending_.clear();
  tokens_.clear();
}

}  // namespace agora::rms
