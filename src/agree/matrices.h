// matrices.h -- the matrix view of a sharing-agreement network for one
// resource type, as used by the paper's enforcement model (Section 3):
//
//   V_i  : actual capacity owned by principal i
//   S_ij : relative share issued by i's currency backing j's currency
//   A_ij : absolute amount issued by i backing j
//
// plus `retained_i`, agora's support for the paper's *granting* taxonomy:
// a granting agreement removes the granted share from the grantor's own
// use, so i's usable fraction of its own capacity is retained_i <= 1.
// Pure sharing economies have retained_i = 1 everywhere.
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.h"

namespace agora::agree {

struct AgreementSystem {
  std::vector<double> capacity;  ///< V, length n
  Matrix relative;               ///< S, n x n, S(i,i) == 0
  Matrix absolute;               ///< A, n x n, A(i,i) == 0
  std::vector<double> retained;  ///< usable own fraction, length n, default 1

  AgreementSystem() = default;
  explicit AgreementSystem(std::size_t n)
      : capacity(n, 0.0), relative(n, n), absolute(n, n), retained(n, 1.0) {}

  std::size_t size() const { return capacity.size(); }

  /// Row sum of S for principal i (total relative share given away).
  double share_out(std::size_t i) const;

  /// Structural checks: shapes agree, S_ii = A_ii = 0, entries >= 0,
  /// capacities >= 0, retained in [0, 1]. When `allow_overdraft` is false
  /// additionally enforces the paper's basic-model restriction
  /// sum_k S_ik <= 1. Throws PreconditionError on violation.
  void validate(bool allow_overdraft = false) const;
};

}  // namespace agora::agree
