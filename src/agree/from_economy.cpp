#include "agree/from_economy.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace agora::agree {

namespace {

using core::CurrencyId;
using core::Economy;
using core::PrincipalId;
using core::ResourceTypeId;
using core::SharingMode;
using core::Ticket;
using core::TicketKind;

bool conveys(const Ticket& t, ResourceTypeId r) {
  return !t.resource.valid() || t.resource == r;
}

}  // namespace

AgreementSystem from_economy(const Economy& e, ResourceTypeId resource) {
  e.check_consistency();
  const std::size_t np = e.num_principals();
  const std::size_t nc = e.num_currencies();
  AgreementSystem sys(np);

  // Owner of each currency.
  std::vector<std::size_t> owner(nc);
  for (std::size_t c = 0; c < nc; ++c) owner[c] = e.currency(CurrencyId(c)).owner.value;

  // Per-currency base capacity for this resource, and per-principal totals.
  std::vector<double> base(nc, 0.0);
  for (std::size_t ti = 0; ti < e.num_tickets(); ++ti) {
    const Ticket& t = e.ticket(core::TicketId(ti));
    if (t.revoked) continue;
    if (t.kind == TicketKind::BaseResource && t.resource == resource)
      base[t.target.value] += t.face;
    if (t.kind == TicketKind::Absolute && t.resource == resource &&
        owner[t.issuer.value] != owner[t.target.value])
      sys.absolute(owner[t.issuer.value], owner[t.target.value]) += t.face;
  }
  for (std::size_t c = 0; c < nc; ++c) sys.capacity[owner[c]] += base[c];

  // Relative share edges between currencies: share[c][d] and the
  // granting-only subset.
  Matrix share(nc, nc);
  Matrix grant_share(nc, nc);
  for (std::size_t ti = 0; ti < e.num_tickets(); ++ti) {
    const Ticket& t = e.ticket(core::TicketId(ti));
    if (t.revoked || t.kind != TicketKind::Relative || !conveys(t, resource)) continue;
    const double f = e.currency(t.issuer).face_value;
    const double s = t.face / f;
    share(t.issuer.value, t.target.value) += s;
    if (t.mode == SharingMode::Granting) grant_share(t.issuer.value, t.target.value) += s;
  }

  // Per principal: fold chains through own currencies, absorb at others.
  for (std::size_t p = 0; p < np; ++p) {
    // Currencies owned by p.
    std::vector<std::size_t> own;
    for (std::size_t c = 0; c < nc; ++c)
      if (owner[c] == p) own.push_back(c);
    const std::size_t k = own.size();
    std::vector<std::size_t> local(nc, k);  // currency -> local index
    for (std::size_t l = 0; l < k; ++l) local[own[l]] = l;

    // Start weights: capacity distribution across p's currencies, or the
    // default currency when p owns no capacity.
    std::vector<double> w(k, 0.0);
    const double vp = sys.capacity[p];
    if (vp > 0.0) {
      for (std::size_t l = 0; l < k; ++l) w[l] = base[own[l]] / vp;
    } else {
      w[local[e.default_currency(PrincipalId(p)).value]] = 1.0;
    }

    // Solve y = w + R_own^T y where R_own are share edges within p's
    // currencies: y_l is the total flow passing through own currency l.
    Matrix system = Matrix::identity(k);
    for (std::size_t a = 0; a < k; ++a)
      for (std::size_t b = 0; b < k; ++b)
        system(b, a) -= share(own[a], own[b]);  // (I - R^T)
    LuFactorization lu(system);
    AGORA_REQUIRE(!lu.singular(),
                  "cyclic 100% relative shares among one principal's currencies");
    const std::vector<double> y = lu.solve(w);

    // Absorb outgoing flow at other principals' currencies.
    for (std::size_t l = 0; l < k; ++l) {
      if (y[l] == 0.0) continue;
      for (std::size_t d = 0; d < nc; ++d) {
        if (owner[d] == p) continue;
        const double s = share(own[l], d);
        if (s > 0.0) sys.relative(p, owner[d]) += y[l] * s;
        const double g = grant_share(own[l], d);
        if (g > 0.0) sys.retained[p] -= y[l] * g;
      }
    }
    sys.retained[p] = std::clamp(sys.retained[p], 0.0, 1.0);
  }

  return sys;
}

}  // namespace agora::agree
