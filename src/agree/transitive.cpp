#include "agree/transitive.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace agora::agree {

namespace {

/// One outgoing agreement edge.
struct Edge {
  std::uint32_t to;
  double share;
};

/// DFS state for enumerating simple paths out of one source node. The
/// graph is held as adjacency lists so that sparse agreement structures
/// (the paper's expected common case at scale, Section 3.2: "one can use
/// faster algorithms to deal with sparse matrices") cost O(paths * degree)
/// rather than O(paths * n).
struct PathSearch {
  const std::vector<std::vector<Edge>>& adj;
  std::size_t max_level;
  double prune_below;
  std::uint64_t paths_left;
  std::vector<bool> visited;
  double* trow;  // T row for the current source

  void run(std::size_t source, std::size_t n) {
    visited.assign(n, false);
    visited[source] = true;
    descend(source, 1.0, 0);
  }

  void descend(std::size_t at, double product, std::size_t depth) {
    if (depth >= max_level) return;
    for (const Edge& e : adj[at]) {
      if (visited[e.to]) continue;
      const double p = product * e.share;
      if (p < prune_below) continue;
      if (paths_left-- == 0)
        throw PreconditionError(
            "transitive_shares: simple-path budget exhausted (factorially many "
            "paths in a dense agreement graph); set TransitiveOptions::prune_below, "
            "cap max_level, or raise max_paths");
      trow[e.to] += p;
      visited[e.to] = true;
      descend(e.to, p, depth + 1);
      visited[e.to] = false;
    }
  }
};

std::vector<std::vector<Edge>> build_adjacency(const Matrix& s) {
  const std::size_t n = s.rows();
  std::vector<std::vector<Edge>> adj(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const double v = s.at_unchecked(i, j);
      if (v > 0.0) adj[i].push_back(Edge{static_cast<std::uint32_t>(j), v});
    }
  return adj;
}

}  // namespace

Matrix transitive_shares(const Matrix& s, const TransitiveOptions& opts) {
  AGORA_REQUIRE(s.rows() == s.cols(), "S must be square");
  const std::size_t n = s.rows();
  Matrix t(n, n);
  if (n == 0 || opts.max_level == 0) return t;
  const std::size_t level = std::min(opts.max_level, n > 0 ? n - 1 : 0);

  const std::vector<std::vector<Edge>> adj = build_adjacency(s);
  PathSearch search{adj, level, opts.prune_below, opts.max_paths, {}, nullptr};
  for (std::size_t i = 0; i < n; ++i) {
    search.trow = t.row(i).data();
    search.run(i, n);
  }
  return t;
}

Matrix transitive_shares_walks(const Matrix& s, std::size_t max_level) {
  AGORA_REQUIRE(s.rows() == s.cols(), "S must be square");
  const std::size_t n = s.rows();
  Matrix total(n, n);
  if (n == 0 || max_level == 0) return total;
  const std::size_t level = std::min(max_level, n - 1);

  Matrix power = s;
  total += power;
  for (std::size_t l = 2; l <= level; ++l) {
    power = power * s;
    total += power;
  }
  for (std::size_t i = 0; i < n; ++i) total(i, i) = 0.0;
  return total;
}

Matrix overdraft_clamp(Matrix t) {
  for (double& v : t.flat()) v = std::min(v, 1.0);
  return t;
}

}  // namespace agora::agree
