// topology.h -- builders for the agreement graph structures the paper
// identifies (Section 2.2: complete, sparse, hierarchical) plus the specific
// shapes its evaluation uses (loops with a time-zone skip, distance-decayed
// complete graphs).
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.h"

namespace agora::agree {

/// Complete graph: every principal shares `share` with every other
/// (Figure 6/8: 10 ISPs sharing 10% with everyone else).
Matrix complete_graph(std::size_t n, double share);

/// Loop: principal i shares `share` with principal (i + skip) mod n
/// (Figures 9-11: share=0.8, skip in {1, 3, 7}). skip must be coprime-ish
/// only for the loop to be a single cycle; any skip in [1, n) is accepted.
Matrix ring(std::size_t n, double share, std::size_t skip = 1);

/// Distance-decayed complete graph on a ring of time zones (Figure 13):
/// share_by_distance[d-1] is given to both neighbors at ring distance d;
/// distances beyond the vector get its last entry.
Matrix distance_decay(std::size_t n, const std::vector<double>& share_by_distance);

/// Sparse random graph: each principal shares with `degree` distinct others
/// chosen uniformly (without self-loops), `share` each. Deterministic in
/// `seed`.
Matrix sparse_random(std::size_t n, std::size_t degree, double share, std::uint64_t seed);

/// Hierarchical: principals are split into `groups` contiguous groups;
/// complete sharing at `intra_share` within a group, and each group's
/// designated gateway (its first member) shares `inter_share` with the
/// gateways of adjacent groups (a sparse upper level), mirroring the
/// paper's hierarchical structure.
Matrix hierarchical(std::size_t n, std::size_t groups, double intra_share, double inter_share);

/// Group index per principal for the hierarchical topology above.
std::vector<std::size_t> hierarchical_groups(std::size_t n, std::size_t groups);

}  // namespace agora::agree
