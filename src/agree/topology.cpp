#include "agree/topology.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace agora::agree {

Matrix complete_graph(std::size_t n, double share) {
  AGORA_REQUIRE(share >= 0.0, "share must be non-negative");
  AGORA_REQUIRE(n < 2 || share * static_cast<double>(n - 1) <= 1.0 + 1e-9,
                "complete graph would exceed 100% shared out per principal");
  Matrix s(n, n, share);
  for (std::size_t i = 0; i < n; ++i) s(i, i) = 0.0;
  return s;
}

Matrix ring(std::size_t n, double share, std::size_t skip) {
  AGORA_REQUIRE(share >= 0.0 && share <= 1.0, "share must lie in [0, 1]");
  AGORA_REQUIRE(n == 0 || (skip >= 1 && skip < n), "skip must lie in [1, n)");
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) s(i, (i + skip) % n) = share;
  return s;
}

Matrix distance_decay(std::size_t n, const std::vector<double>& share_by_distance) {
  AGORA_REQUIRE(!share_by_distance.empty(), "need at least one distance share");
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::size_t fwd = (j + n - i) % n;
      const std::size_t d = std::min(fwd, n - fwd);  // ring distance
      const std::size_t idx = std::min(d - 1, share_by_distance.size() - 1);
      s(i, j) = share_by_distance[idx];
    }
  }
  return s;
}

Matrix sparse_random(std::size_t n, std::size_t degree, double share, std::uint64_t seed) {
  AGORA_REQUIRE(n == 0 || degree < n, "degree must be < n");
  AGORA_REQUIRE(share * static_cast<double>(degree) <= 1.0 + 1e-9,
                "sparse graph would exceed 100% shared out per principal");
  Matrix s(n, n);
  Pcg32 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t placed = 0;
    while (placed < degree) {
      const std::size_t j = rng.uniform_u32(static_cast<std::uint32_t>(n));
      if (j == i || s(i, j) > 0.0) continue;
      s(i, j) = share;
      ++placed;
    }
  }
  return s;
}

std::vector<std::size_t> hierarchical_groups(std::size_t n, std::size_t groups) {
  AGORA_REQUIRE(groups >= 1 && groups <= std::max<std::size_t>(n, 1),
                "group count must lie in [1, n]");
  std::vector<std::size_t> g(n);
  const std::size_t per = (n + groups - 1) / groups;
  for (std::size_t i = 0; i < n; ++i) g[i] = std::min(i / per, groups - 1);
  return g;
}

Matrix hierarchical(std::size_t n, std::size_t groups, double intra_share, double inter_share) {
  const std::vector<std::size_t> g = hierarchical_groups(n, groups);
  Matrix s(n, n);
  // Complete sharing inside each group.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && g[i] == g[j]) s(i, j) = intra_share;
  // Gateways: first member of each group, ring-connected at the top level.
  std::vector<std::size_t> gateway(groups, n);
  for (std::size_t i = 0; i < n; ++i)
    if (gateway[g[i]] == n) gateway[g[i]] = i;
  for (std::size_t k = 0; k < groups; ++k) {
    if (gateway[k] == n) continue;
    const std::size_t next = (k + 1) % groups;
    if (next == k || gateway[next] == n) continue;
    s(gateway[k], gateway[next]) = inter_share;
    s(gateway[next], gateway[k]) = inter_share;
  }
  // Validate row budgets.
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += s(i, j);
    AGORA_REQUIRE(row <= 1.0 + 1e-9, "hierarchical shares exceed 100% for a gateway");
  }
  return s;
}

}  // namespace agora::agree
