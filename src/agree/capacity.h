// capacity.h -- dynamic resource availability under agreements: the paper's
// C_i computation, combining transitive relative flows, absolute agreements,
// the overdraft clamp K, and the absolute-agreement clamp U (Section 3.1-3.2):
//
//     K_ki = min(T_ki, 1)
//     U_ki = min(V_k * K_ki + A_ki, V_k)          (never draw more than V_k)
//     C_i  = retained_i * V_i + sum_{k != i} U_ki
#pragma once

#include "agree/matrices.h"
#include "agree/transitive.h"

namespace agora::agree {

struct CapacityReport {
  /// Clamped transitive share matrix K (n x n, zero diagonal).
  Matrix shares;
  /// Entitlements: entitlement(k, i) = U_ki, the amount principal i may
  /// draw from k's capacity (diagonal: retained_k * V_k, i.e. own use).
  Matrix entitlement;
  /// Total availability C_i per principal.
  std::vector<double> capacity;
};

/// Compute availability for every principal. `opts.max_level` limits the
/// transitivity level (Figures 8-11 sweep this); the default is the full
/// closure. Overdraft economies are supported: shares are clamped by K.
CapacityReport compute_capacities(const AgreementSystem& sys, const TransitiveOptions& opts = {});

}  // namespace agora::agree
