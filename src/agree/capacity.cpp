#include "agree/capacity.h"

#include <algorithm>

namespace agora::agree {

CapacityReport compute_capacities(const AgreementSystem& sys, const TransitiveOptions& opts) {
  sys.validate(/*allow_overdraft=*/true);
  const std::size_t n = sys.size();

  CapacityReport rep;
  rep.shares = overdraft_clamp(transitive_shares(sys.relative, opts));
  rep.entitlement = Matrix(n, n);
  rep.capacity.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    const double vk = sys.capacity[k];
    rep.entitlement(k, k) = sys.retained[k] * vk;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == k) continue;
      const double flow = vk * rep.shares(k, i) + sys.absolute(k, i);
      rep.entitlement(k, i) = std::min(flow, vk);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double c = rep.entitlement(i, i);
    for (std::size_t k = 0; k < n; ++k)
      if (k != i) c += rep.entitlement(k, i);
    rep.capacity[i] = c;
  }
  return rep;
}

}  // namespace agora::agree
