#include "agree/matrices.h"

#include <cmath>

namespace agora::agree {

double AgreementSystem::share_out(std::size_t i) const {
  AGORA_REQUIRE(i < size(), "principal index out of range");
  double s = 0.0;
  for (std::size_t j = 0; j < size(); ++j) s += relative(i, j);
  return s;
}

void AgreementSystem::validate(bool allow_overdraft) const {
  const std::size_t n = size();
  AGORA_REQUIRE(relative.rows() == n && relative.cols() == n, "S shape mismatch");
  AGORA_REQUIRE(absolute.rows() == n && absolute.cols() == n, "A shape mismatch");
  AGORA_REQUIRE(retained.size() == n, "retained length mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    AGORA_REQUIRE(capacity[i] >= 0.0 && std::isfinite(capacity[i]),
                  "capacity must be non-negative and finite");
    AGORA_REQUIRE(retained[i] >= 0.0 && retained[i] <= 1.0 + 1e-12,
                  "retained fraction must lie in [0, 1]");
    AGORA_REQUIRE(relative(i, i) == 0.0, "S must have a zero diagonal");
    AGORA_REQUIRE(absolute(i, i) == 0.0, "A must have a zero diagonal");
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      AGORA_REQUIRE(relative(i, j) >= 0.0, "S entries must be non-negative");
      AGORA_REQUIRE(absolute(i, j) >= 0.0, "A entries must be non-negative");
      row += relative(i, j);
    }
    if (!allow_overdraft)
      AGORA_REQUIRE(row <= 1.0 + 1e-9,
                    "row sum of S exceeds 1 (overdraft); pass allow_overdraft to permit");
  }
}

}  // namespace agora::agree
