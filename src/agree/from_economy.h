// from_economy.h -- bridge from the ticket/currency expression layer
// (src/core) to the matrix enforcement layer (src/agree).
//
// The enforcement model (Section 3) works on principal-level matrices V, S,
// A, while agreements are expressed as tickets between currencies -- possibly
// routed through *virtual* currencies (Example 2). This bridge collapses
// each principal's internal currency structure:
//
//   * V_i  = live BaseResource faces across all currencies owned by i.
//   * S_ij = fraction of i's capacity conveyed to currencies owned by j via
//            relative tickets, where chains through i's *own* currencies
//            (default or virtual) are folded in, and flow absorbs as soon as
//            it reaches another principal. Chains continuing *through* other
//            principals are deliberately NOT folded -- that is exactly the
//            transitive-agreement computation (transitive.h) and folding it
//            here would double-count it.
//   * A_ij = live absolute agreement faces from i's currencies to j's.
//   * retained_i = 1 - granted-away fraction (Granting-mode tickets only);
//            pure sharing economies get retained_i = 1.
//
// Capacity weighting: when a principal's base funding is spread over several
// of its currencies, shares are combined weighted by each currency's share
// of the principal's capacity; with no capacity the default currency is
// used as the reference point.
#pragma once

#include "agree/matrices.h"
#include "core/economy.h"

namespace agora::agree {

/// Extract the agreement system for one resource type. Relative tickets
/// typed to a different resource are ignored; untyped relative tickets
/// convey every resource and are included.
AgreementSystem from_economy(const core::Economy& e, core::ResourceTypeId resource);

}  // namespace agora::agree
