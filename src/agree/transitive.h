// transitive.h -- transitive agreement flows (Section 3.1).
//
// The paper defines the resource flow from node i to node j through at most
// m levels of chained agreements as I_ij^(m) = V_i * T_ij^(m), where
//
//     T_ij^(m) = sum over *simple* paths i -> k_1 -> ... -> k_{l-1} -> j
//                (l <= m, all k_p distinct and different from i and j)
//                of S_{i k_1} S_{k_1 k_2} ... S_{k_{l-1} j}
//
// The no-cycle constraint makes this a sum over simple paths, which we
// enumerate exactly with a depth-first search (every prefix of a simple
// path from i ending at v contributes to T_iv, so one DFS per source
// computes a whole row). `prune_below` optionally abandons branches whose
// accumulated product can no longer matter -- an approximation knob the
// micro_transitive bench quantifies.
//
// A cheaper matrix-power variant (sums over *walks*, revisits allowed) is
// provided for large sparse systems; it upper-bounds the exact T.
#pragma once

#include <cstddef>

#include "agree/matrices.h"
#include "util/matrix.h"

namespace agora::agree {

struct TransitiveOptions {
  /// Maximum chain length m. 1 = direct agreements only; 0 = no sharing at
  /// all; n-1 (the default, expressed as SIZE_MAX) = full transitive closure.
  std::size_t max_level = static_cast<std::size_t>(-1);
  /// Abandon DFS branches whose path product drops below this (0 = exact).
  double prune_below = 0.0;
  /// Guard rail: the number of simple paths is factorial in dense graphs
  /// (a complete graph on 14 nodes already has ~10^10 of them), so the DFS
  /// aborts with a PreconditionError after enumerating this many paths
  /// rather than silently running for hours. The default admits a complete
  /// graph up to n = 11 (~10^8 paths, a few seconds); raise it, set
  /// `prune_below`, or cap `max_level` for larger dense systems.
  std::uint64_t max_paths = 400'000'000;
};

/// Exact T^(m) over simple paths. T has a zero diagonal.
Matrix transitive_shares(const Matrix& s, const TransitiveOptions& opts = {});

/// Walk-based approximation: sum_{l=1..m} S^l with the diagonal zeroed.
/// Coincides with the exact T on forests; upper-bounds it in general.
Matrix transitive_shares_walks(const Matrix& s, std::size_t max_level);

/// The paper's overdraft clamp (Section 3.2): K_ij = min(T_ij, 1).
Matrix overdraft_clamp(Matrix t);

}  // namespace agora::agree
