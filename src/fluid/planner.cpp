#include "fluid/planner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

namespace agora::fluid {

double FluidResult::peak_wait() const {
  double peak = 0.0;
  for (double w : wait_estimate.flat()) peak = std::max(peak, w);
  return peak;
}

double FluidResult::mean_wait(const std::vector<std::vector<double>>& demand) const {
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    for (std::size_t t = 0; t < demand[i].size() && t < wait_estimate.rows(); ++t) {
      weighted += demand[i][t] * wait_estimate(t, i);
      total += demand[i][t];
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

FluidResult plan(const FluidConfig& cfg, const std::vector<std::vector<double>>& demand) {
  const std::size_t n = demand.size();
  const std::size_t slots = cfg.num_slots();
  AGORA_REQUIRE(n > 0, "fluid planner needs at least one proxy");
  AGORA_REQUIRE(cfg.power.empty() || cfg.power.size() == n,
                "power vector must match proxy count");
  std::vector<double> power = cfg.power.empty() ? std::vector<double>(n, 1.0) : cfg.power;
  for (const auto& d : demand) {
    AGORA_REQUIRE(d.size() == slots, "demand series length must equal num_slots()");
    for (double v : d) AGORA_REQUIRE(v >= 0.0 && std::isfinite(v), "demand must be >= 0");
  }

  const bool sharing = cfg.agreements.rows() == n && cfg.agreements.cols() == n;
  // One allocator reused across slots; capacities refresh per slot.
  std::unique_ptr<alloc::Allocator> allocator;
  if (sharing) {
    agree::AgreementSystem sys(n);
    sys.relative = cfg.agreements;
    allocator = std::make_unique<alloc::Allocator>(std::move(sys), cfg.alloc_opts);
  }

  FluidResult res;
  res.backlog = Matrix(slots, n);
  res.moved = Matrix(slots, n);
  res.received = Matrix(slots, n);
  res.wait_estimate = Matrix(slots, n);

  std::vector<double> backlog(n, 0.0);
  for (std::size_t t = 0; t < slots; ++t) {
    // Work present this slot and capacity available.
    std::vector<double> inflow(n), capacity(n), spare(n), surplus(n);
    for (std::size_t i = 0; i < n; ++i) {
      inflow[i] = backlog[i] + demand[i][t];
      capacity[i] = power[i] * cfg.slot_width;
      surplus[i] = inflow[i] - capacity[i];
      spare[i] = std::max(0.0, -surplus[i]);
    }

    if (sharing) {
      // Redistribute overloaded proxies' overflow (largest first) via the
      // allocation LP against the remaining spares; repeat a few passes so
      // work can *relay* through moderately busy intermediaries the way it
      // does in the discrete simulator.
      for (std::size_t pass = 0; pass < std::max<std::size_t>(1, cfg.relay_passes); ++pass) {
        double moved_this_pass = 0.0;
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return surplus[a] > surplus[b]; });
        for (std::size_t idx : order) {
          const double overflow = surplus[idx] - cfg.backlog_threshold;
          if (overflow <= 0.0) continue;
          // The origin itself has no spare (it is overloaded); exclude it
          // so the LP draws only on remote spare.
          std::vector<double> remote_spare = spare;
          remote_spare[idx] = 0.0;
          allocator->set_capacities(remote_spare);
          const double reachable = allocator->available_to(idx);
          // Work placed remotely inflates by the overhead fraction.
          const double x = std::min(overflow / (1.0 + cfg.overhead_fraction),
                                    reachable * (1.0 - 1e-9));
          if (x <= 1e-12) continue;
          const alloc::AllocationPlan plan_result = allocator->allocate(idx, x);
          if (!plan_result.satisfied()) continue;
          for (std::size_t k = 0; k < n; ++k) {
            const double landed = plan_result.draw[k] * (1.0 + cfg.overhead_fraction);
            if (k == idx || landed <= 0.0) continue;
            spare[k] = std::max(0.0, spare[k] - landed);
            inflow[k] += landed;
            surplus[k] += landed;
            res.received(t, k) += landed;
          }
          inflow[idx] -= x;
          surplus[idx] -= x;
          res.moved(t, idx) += x;
          moved_this_pass += x;
        }
        if (moved_this_pass <= 1e-9) break;
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      const double served = std::min(inflow[i], capacity[i]);
      const double end_backlog = inflow[i] - served;
      // Mean wait for this slot's demand: average of start/end backlog over
      // the service rate (fluid FIFO delay).
      const double start_backlog = backlog[i];
      res.wait_estimate(t, i) =
          0.5 * (start_backlog + end_backlog) / (power[i] > 0.0 ? power[i] : 1.0);
      backlog[i] = end_backlog;
      res.backlog(t, i) = end_backlog;
    }
  }
  return res;
}

std::vector<double> expected_demand_per_slot(double peak_rate, double mean_request_demand,
                                             const std::vector<double>& slot_weights,
                                             double slot_width, std::size_t shift_slots) {
  AGORA_REQUIRE(!slot_weights.empty(), "need slot weights");
  const std::size_t s = slot_weights.size();
  std::vector<double> out(s);
  for (std::size_t t = 0; t < s; ++t) {
    const std::size_t src = (t + s - (shift_slots % s)) % s;
    out[t] = peak_rate * slot_weights[src] * slot_width * mean_request_demand;
  }
  return out;
}

}  // namespace agora::fluid
