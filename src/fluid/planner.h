// planner.h -- a fluid (deterministic) approximation of the proxy case
// study for fast what-if analysis.
//
// Where the discrete-event simulator (src/proxysim) tracks every request,
// the fluid planner works on *work rates*: per 10-minute slot, each proxy
// receives a known amount of demand (unit-power service seconds), serves up
// to its capacity, and carries the rest as backlog. When a proxy's backlog
// exceeds its threshold, the same Section-3 allocation LP used by the
// simulator redistributes the overflow to proxies with spare slot capacity
// -- so agreement topologies, transitivity levels, and overheads can be
// compared in milliseconds instead of seconds (micro_fluid quantifies both
// the speedup and the approximation error against the simulator).
//
// This is the "planning" use of the paper's model: ISPs know their diurnal
// demand curves, so next-day contracts can be evaluated offline.
//
// Approximation limits: the fluid recursion moves overflow within a slot in
// `relay_passes` sweeps, so multi-hop relief that the discrete simulator
// achieves by *displacement over time* (a moderately busy intermediary
// sheds its own forecast arrivals to make room) is only partially captured
// under direct-only (level 1) enforcement on sparse topologies. The fluid
// estimate is conservative there: it overstates congestion, never hides it.
#pragma once

#include <cstddef>
#include <vector>

#include "alloc/allocator.h"
#include "util/matrix.h"

namespace agora::fluid {

struct FluidConfig {
  double horizon = 86400.0;
  double slot_width = 600.0;
  /// Relative agreement matrix between proxies (empty = no sharing).
  Matrix agreements;
  alloc::AllocatorOptions alloc_opts;
  /// Per-proxy processing power (empty = all 1.0).
  std::vector<double> power;
  /// Backlog (unit-power seconds) a proxy tolerates before redistributing.
  double backlog_threshold = 5.0;
  /// Fraction of moved work added as redirection overhead
  /// (= redirect_cost / mean request demand in the discrete model).
  double overhead_fraction = 0.0;
  /// Redistribution sweeps per slot. One pass moves each proxy's overflow
  /// once; additional passes model the *relay* effect the discrete
  /// simulator exhibits (a donor that received work sheds its own fresh
  /// arrivals onward within the same slot). Work is fungible in the fluid
  /// view, so relaying is displacement, not re-redirection of a request.
  std::size_t relay_passes = 8;

  std::size_t num_slots() const {
    return static_cast<std::size_t>(horizon / slot_width + 0.5);
  }
};

struct FluidResult {
  /// backlog(t, i): unserved work at proxy i at the END of slot t.
  Matrix backlog;
  /// moved(t, i): work moved AWAY from proxy i during slot t.
  Matrix moved;
  /// received(t, i): work moved TO proxy i during slot t (incl. overhead).
  Matrix received;
  /// Estimated mean wait for demand arriving in slot t at proxy i
  /// (fluid approximation: average backlog over the slot / service rate).
  Matrix wait_estimate;

  /// Largest per-slot wait estimate across proxies and slots.
  double peak_wait() const;
  /// Demand-weighted mean wait estimate given the demand matrix used.
  double mean_wait(const std::vector<std::vector<double>>& demand) const;
};

/// Run the fluid recursion. `demand[i][t]` is the work (unit-power seconds)
/// arriving at proxy i during slot t; each proxy needs `num_slots()` entries.
/// The final backlogs drain in-place over extra virtual slots so totals
/// balance.
FluidResult plan(const FluidConfig& cfg, const std::vector<std::vector<double>>& demand);

/// Convenience: expected per-slot demand implied by a trace generator
/// profile (rate * mean demand per request, per slot), for `proxy_shift`
/// slots of cyclic time shift.
std::vector<double> expected_demand_per_slot(double peak_rate, double mean_request_demand,
                                             const std::vector<double>& slot_weights,
                                             double slot_width, std::size_t shift_slots);

}  // namespace agora::fluid
