// agora_plan -- fast what-if planning with the fluid model: evaluate an
// agreement topology against the diurnal workload in milliseconds, printing
// the per-hour backlog/wait picture a full discrete-event run would take
// seconds to produce.
//
// Examples:
//   agora_plan --topology=complete --share=0.1 --gap-hours=1
//   agora_plan --topology=ring --share=0.8 --skip=1 --level=1
//   agora_plan --scheduler=none --capacity=1.25
#include <cstdio>

#include "agree/topology.h"
#include "fluid/planner.h"
#include "trace/generator.h"
#include "util/flags.h"

using namespace agora;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("proxies", "10", "number of ISP proxies");
  flags.define_double("gap-hours", "1", "time-zone skew between adjacent proxies (hours)");
  flags.define_double("peak-rate", "9.5", "requests/second at the diurnal peak");
  flags.define("scheduler", "lp", "lp | none");
  flags.define("topology", "complete", "complete | ring | decay");
  flags.define_double("share", "0.1", "per-agreement relative share");
  flags.define_int("skip", "1", "ring topology: neighbor distance");
  flags.define_int("level", "0", "transitivity level (0 = full closure)");
  flags.define_double("capacity", "1", "processing-power multiplier for every proxy");
  flags.define_double("overhead", "0", "redirection overhead as a fraction of moved work");

  flags.parse_or_exit(argc, argv,
                      "agora_plan: fluid what-if planner for sharing agreement topologies");

  try {
    const auto n = static_cast<std::size_t>(flags.get_int("proxies"));
    const double share = flags.get_double("share");
    const double gap_slots = flags.get_double("gap-hours") * 6.0;  // 10-min slots

    // Expected demand from the canonical diurnal profile.
    const trace::DiurnalProfile profile = trace::DiurnalProfile::berkeley_like();
    trace::GeneratorConfig gc;
    gc.peak_rate = flags.get_double("peak-rate");
    const double mean_demand =
        std::min(30.0, 0.1 + 1e-6 * trace::expected_response_bytes(gc));
    std::vector<double> weights(profile.slots());
    for (std::size_t s = 0; s < profile.slots(); ++s) weights[s] = profile.slot_weight(s);

    std::vector<std::vector<double>> demand;
    for (std::size_t p = 0; p < n; ++p)
      demand.push_back(fluid::expected_demand_per_slot(
          gc.peak_rate, mean_demand, weights, 600.0,
          static_cast<std::size_t>(gap_slots * static_cast<double>(p) + 0.5)));

    fluid::FluidConfig cfg;
    cfg.power.assign(n, flags.get_double("capacity"));
    cfg.overhead_fraction = flags.get_double("overhead");
    const std::string sched = flags.get("scheduler");
    if (sched == "lp") {
      const std::string topo = flags.get("topology");
      if (topo == "complete") cfg.agreements = agree::complete_graph(n, share);
      else if (topo == "ring")
        cfg.agreements =
            agree::ring(n, share, static_cast<std::size_t>(flags.get_int("skip")));
      else if (topo == "decay")
        cfg.agreements = agree::distance_decay(n, {2 * share, share, share / 2, share / 4});
      else flags.usage_error("unknown --topology: " + topo);
      const auto level = static_cast<std::size_t>(flags.get_int("level"));
      if (level > 0) cfg.alloc_opts.transitive.max_level = level;
    } else if (sched != "none") {
      flags.usage_error("unknown --scheduler: " + sched);
    }

    const fluid::FluidResult r = fluid::plan(cfg, demand);

    std::printf("%-5s %14s %14s %14s\n", "hour", "est wait p0 (s)", "backlog p0 (s)",
                "moved p0 (s)");
    for (std::size_t h = 0; h < 24; ++h) {
      double wait = 0.0, backlog = 0.0, moved = 0.0;
      for (std::size_t s = h * 6; s < (h + 1) * 6; ++s) {
        wait += r.wait_estimate(s, 0) / 6.0;
        backlog = r.backlog(s, 0);
        moved += r.moved(s, 0);
      }
      std::printf("%-5zu %14.2f %14.1f %14.1f\n", h, wait, backlog, moved);
    }
    std::printf("\npeak wait estimate (any proxy/slot): %.2f s | demand-weighted mean: %.3f s\n",
                r.peak_wait(), r.mean_wait(demand));
    return 0;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
}
