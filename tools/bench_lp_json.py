#!/usr/bin/env python3
"""Merge google-benchmark JSON output from micro_lp, micro_warmstart and
micro_certify into the compact BENCH_lp.json the repo tracks (see
tools/bench.sh).

Usage: bench_lp_json.py <micro_lp.json> <lpscale_summary.txt> \
                        <micro_warmstart.json> <warmstart_summary.txt> \
                        <micro_certify.json> <certify_summary.txt> <out.json>

Only the Python standard library is used. For every benchmark we keep the
iteration count, ns/solve (real time) and -- where the benchmark reports it
-- allocations and LP pivots per solve. micro_lp's LPSCALE sweep lines
(one per n x backend configuration, plus the closing speedup_n100 line) are
parsed into a "scaling" block, the micro_warmstart verification line
(WARMSTART theta_max_diff=... cold_iters=... warm_iters=...
iter_ratio=...) into a "warmstart" block, and the micro_certify line
(CERTIFY overhead_pct=... certified_solves=... fallbacks=...
uncertified_grants=...) into a "certify" block, so all acceptance metrics
are recorded alongside the timings.
"""

import json
import re
import sys


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "name": b["name"],
            "iterations": b.get("iterations", 0),
            "ns_per_solve": round(float(b.get("real_time", 0.0)), 2),
        }
        for counter in ("allocs_per_solve", "lp_iters_per_solve"):
            if counter in b:
                entry[counter] = round(float(b[counter]), 3)
        out.append(entry)
    return out, doc.get("context", {})


def parse_lpscale(path):
    with open(path) as f:
        text = f.read()
    points = []
    for m in re.finditer(
        r"LPSCALE n=(\d+) backend=(\S+) certified=(\d) consults_per_s=(\S+)"
        r" iterations=(\d+) basis_nnz=(\d+) lu_nnz=(\d+) fill_ratio=(\S+)"
        r" refactorizations=(\d+) max_eta=(\d+)",
        text,
    ):
        points.append(
            {
                "n": int(m.group(1)),
                "backend": m.group(2),
                "certified": bool(int(m.group(3))),
                "consults_per_s": float(m.group(4)),
                "iterations": int(m.group(5)),
                "basis_nnz": int(m.group(6)),
                "lu_nnz": int(m.group(7)),
                "fill_ratio": float(m.group(8)),
                "refactorizations": int(m.group(9)),
                "max_eta": int(m.group(10)),
            }
        )
    speed = re.search(r"LPSCALE speedup_n100=(\S+)", text)
    if not points or not speed:
        raise SystemExit(f"no LPSCALE sweep lines found in {path}")
    return {"points": points, "speedup_n100": float(speed.group(1))}


def parse_warmstart(path):
    with open(path) as f:
        text = f.read()
    m = re.search(
        r"WARMSTART theta_max_diff=(\S+) cold_iters=(\d+) warm_iters=(\d+) iter_ratio=(\S+)",
        text,
    )
    if not m:
        raise SystemExit(f"no WARMSTART summary line found in {path}")
    return {
        "theta_max_diff": float(m.group(1)),
        "cold_iters": int(m.group(2)),
        "warm_iters": int(m.group(3)),
        "iter_ratio": float(m.group(4)),
    }


def parse_certify(path):
    with open(path) as f:
        text = f.read()
    m = re.search(
        r"CERTIFY overhead_pct=(\S+) certified_solves=(\d+)"
        r" fallbacks=(\d+) uncertified_grants=(\d+)",
        text,
    )
    if not m:
        raise SystemExit(f"no CERTIFY summary line found in {path}")
    return {
        "certify_overhead_pct": float(m.group(1)),
        "certified_solves": int(m.group(2)),
        "fallbacks": int(m.group(3)),
        "uncertified_grants": int(m.group(4)),
    }


def main(argv):
    if len(argv) != 8:
        raise SystemExit(__doc__)
    lp_benches, context = load_benchmarks(argv[1])
    warm_benches, _ = load_benchmarks(argv[3])
    certify_benches, _ = load_benchmarks(argv[5])
    doc = {
        "schema": "agora-bench-lp/3",
        "build_type": context.get("library_build_type", "unknown"),
        "num_cpus": context.get("num_cpus", 0),
        "benchmarks": lp_benches + warm_benches + certify_benches,
        "scaling": parse_lpscale(argv[2]),
        "warmstart": parse_warmstart(argv[4]),
        "certify": parse_certify(argv[6]),
    }
    with open(argv[7], "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {argv[7]}")


if __name__ == "__main__":
    main(sys.argv)
