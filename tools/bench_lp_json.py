#!/usr/bin/env python3
"""Merge google-benchmark JSON output from micro_lp and micro_warmstart into
the compact BENCH_lp.json the repo tracks (see tools/bench.sh).

Usage: bench_lp_json.py <micro_lp.json> <micro_warmstart.json> \
                        <warmstart_summary.txt> <out.json>

Only the Python standard library is used. For every benchmark we keep the
iteration count, ns/solve (real time) and -- where the benchmark reports it
-- allocations and LP pivots per solve. The micro_warmstart verification
line (WARMSTART theta_max_diff=... cold_iters=... warm_iters=...
iter_ratio=...) is parsed into a "warmstart" block so the acceptance metric
is recorded alongside the timings.
"""

import json
import re
import sys


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "name": b["name"],
            "iterations": b.get("iterations", 0),
            "ns_per_solve": round(float(b.get("real_time", 0.0)), 2),
        }
        for counter in ("allocs_per_solve", "lp_iters_per_solve"):
            if counter in b:
                entry[counter] = round(float(b[counter]), 3)
        out.append(entry)
    return out, doc.get("context", {})


def parse_summary(path):
    with open(path) as f:
        text = f.read()
    m = re.search(
        r"WARMSTART theta_max_diff=(\S+) cold_iters=(\d+) warm_iters=(\d+) iter_ratio=(\S+)",
        text,
    )
    if not m:
        raise SystemExit(f"no WARMSTART summary line found in {path}")
    return {
        "theta_max_diff": float(m.group(1)),
        "cold_iters": int(m.group(2)),
        "warm_iters": int(m.group(3)),
        "iter_ratio": float(m.group(4)),
    }


def main(argv):
    if len(argv) != 5:
        raise SystemExit(__doc__)
    lp_benches, context = load_benchmarks(argv[1])
    warm_benches, _ = load_benchmarks(argv[2])
    doc = {
        "schema": "agora-bench-lp/1",
        "build_type": context.get("library_build_type", "unknown"),
        "num_cpus": context.get("num_cpus", 0),
        "benchmarks": lp_benches + warm_benches,
        "warmstart": parse_summary(argv[3]),
    }
    with open(argv[4], "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {argv[4]}")


if __name__ == "__main__":
    main(sys.argv)
