// agora_serve -- the wire boundary on loopback: serve an enforcement engine
// over the framed RPC protocol (DESIGN.md §14), or drive one as a client.
//
// Server mode (default): builds a complete-graph island economy, fronts a
// sharded EnforcementEngine with net::AgoraService, and runs until SIGTERM/
// SIGINT triggers a graceful drain (stop accepting, GoAway, flush, resolve
// every in-flight request with a definite status). Prints a stats summary
// on exit; --metrics-out snapshots the obs registry.
//
//   agora_serve --port=7411 --participants=16 --threads=4 --plan-cache=1
//
// Client mode (--connect=host:port[,host:port...]): N worker threads, each
// with its own failover-aware net::Client, fire seeded random consults and
// report grant/deny/shed counts plus latency quantiles.
//
//   agora_serve --connect=127.0.0.1:7411 --requests=1000 --concurrency=4
#include <csignal>
#include <cstdio>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "agree/topology.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/service.h"
#include "obs/export.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace agora;

namespace {

// SIGTERM/SIGINT -> request_drain: one relaxed atomic store through a
// pointer published before the handlers are installed (async-signal-safe).
net::AgoraService* g_service = nullptr;
std::atomic<int> g_signal{0};

void on_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  if (g_service != nullptr) g_service->request_drain();
}

std::vector<net::Endpoint> parse_endpoints(Flags& flags, const std::string& spec) {
  std::vector<net::Endpoint> eps;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string one =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    const std::size_t colon = one.rfind(':');
    if (colon == std::string::npos || colon + 1 >= one.size())
      flags.usage_error("--connect endpoint needs host:port, got: " + one);
    char* end = nullptr;
    const long port = std::strtol(one.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || port < 1 || port > 65535)
      flags.usage_error("--connect has a bad port in: " + one);
    eps.push_back(net::Endpoint{one.substr(0, colon), static_cast<std::uint16_t>(port)});
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return eps;
}

int run_server(Flags& flags) {
  const auto participants = static_cast<std::size_t>(flags.get_int("participants"));
  const double share = flags.get_double("share");
  const double capacity = flags.get_double("capacity");
  if (participants < 1) flags.usage_error("--participants must be >= 1");
  if (capacity <= 0.0) flags.usage_error("--capacity must be > 0");
  if (participants > 1 && share * static_cast<double>(participants - 1) > 1.0)
    flags.usage_error("--share too large: share * (participants - 1) must be <= 1");

  net::ServiceOptions sopts;
  sopts.port = static_cast<std::uint16_t>(flags.get_int("port"));
  sopts.max_queue = static_cast<std::size_t>(flags.get_int("max-queue"));
  sopts.max_inflight = static_cast<std::size_t>(flags.get_int("max-inflight"));
  sopts.min_deadline_us = static_cast<std::uint64_t>(flags.get_int("min-deadline-us"));
  sopts.drain_grace_ms = static_cast<int>(flags.get_int("drain-grace-ms"));
  if (sopts.max_queue < 1) flags.usage_error("--max-queue must be >= 1");
  if (sopts.max_inflight < 1) flags.usage_error("--max-inflight must be >= 1");

  agree::AgreementSystem sys(participants);
  sys.relative = agree::complete_graph(participants, share);
  for (std::size_t i = 0; i < participants; ++i)
    sys.capacity[i] = capacity + static_cast<double>(i % 4);

  engine::EngineOptions eopts;
  eopts.threads = static_cast<std::size_t>(flags.get_int("threads"));
  eopts.plan_cache = flags.get_int("plan-cache") != 0;
  // The demo economy is a complete graph, where the exact simple-path
  // transitive closure is factorial in n. Chains through several small
  // relative shares carry negligible capacity, so prune them instead of
  // capping --participants at the exact-DFS budget (~11 for dense graphs).
  eopts.alloc.transitive.prune_below = 1e-6;
  engine::EnforcementEngine engine(sys, eopts);

  net::AgoraService service(engine, sopts);
  const Status st = service.start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  g_service = &service;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("agora_serve: %zu participants, %zu engine threads%s\n", participants,
              eopts.threads, eopts.plan_cache ? ", plan cache on" : "");
  std::printf("listening on 127.0.0.1:%u (SIGTERM drains)\n",
              static_cast<unsigned>(service.port()));
  std::fflush(stdout);

  while (service.running())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.stop();
  g_service = nullptr;

  const int sig = g_signal.load(std::memory_order_relaxed);
  if (sig != 0) std::printf("signal %d: drained\n", sig);
  const net::ServiceStats s = service.stats();
  std::printf(
      "conns accepted %llu rejected %llu | frames rx/tx %llu/%llu | "
      "consults %llu answered %llu\n"
      "shed queue/drain/deadline %llu/%llu/%llu | late drops %llu | malformed %llu | "
      "peak queue/inflight %llu/%llu\n",
      static_cast<unsigned long long>(s.accepted), static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.frames_rx), static_cast<unsigned long long>(s.frames_tx),
      static_cast<unsigned long long>(s.consults), static_cast<unsigned long long>(s.answered),
      static_cast<unsigned long long>(s.shed_queue), static_cast<unsigned long long>(s.shed_drain),
      static_cast<unsigned long long>(s.shed_deadline),
      static_cast<unsigned long long>(s.late_drop), static_cast<unsigned long long>(s.malformed),
      static_cast<unsigned long long>(s.peak_queue),
      static_cast<unsigned long long>(s.peak_inflight));

  const std::string metrics_out = flags.get("metrics-out");
  if (!metrics_out.empty()) {
    obs::write_snapshot(metrics_out, obs::Sink::global(), {});
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}

int run_client(Flags& flags) {
  const std::vector<net::Endpoint> endpoints = parse_endpoints(flags, flags.get("connect"));
  const auto requests = static_cast<std::uint64_t>(flags.get_int("requests"));
  const auto concurrency = static_cast<std::size_t>(flags.get_int("concurrency"));
  const int deadline_ms = static_cast<int>(flags.get_int("deadline-ms"));
  const double amount_max = flags.get_double("amount-max");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  if (concurrency < 1) flags.usage_error("--concurrency must be >= 1");
  if (deadline_ms < 1) flags.usage_error("--deadline-ms must be >= 1");
  if (amount_max <= 0.0) flags.usage_error("--amount-max must be > 0");

  // One probe to learn the participant count (and fail fast if nobody
  // listens).
  std::uint32_t participants = 0;
  {
    net::ClientOptions copt;
    copt.endpoints = endpoints;
    net::Client probe(copt);
    net::InfoReply info;
    const Status st = probe.info(info, deadline_ms);
    if (!st.ok()) {
      std::fprintf(stderr, "error: cannot reach service: %s\n", st.to_string().c_str());
      return 1;
    }
    participants = info.participants;
  }
  if (participants == 0) {
    std::fprintf(stderr, "error: service reports zero participants\n");
    return 1;
  }

  struct WorkerResult {
    std::uint64_t granted = 0, denied = 0, insufficient = 0, unavailable = 0;
    std::uint64_t deadline = 0, other = 0, uncertified = 0;
    std::uint64_t retries = 0, failovers = 0;
    std::vector<double> latencies_s;
  };
  std::vector<WorkerResult> results(concurrency);
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      net::ClientOptions copt;
      copt.endpoints = endpoints;
      copt.seed = seed + w;
      copt.default_deadline_ms = deadline_ms;
      net::Client client(copt);
      Pcg32 rng(seed * 1000 + w);
      WorkerResult& r = results[w];
      const std::uint64_t mine = requests / concurrency + (w < requests % concurrency ? 1 : 0);
      r.latencies_s.reserve(mine);
      for (std::uint64_t i = 0; i < mine; ++i) {
        const std::uint32_t who = rng.uniform_u32(participants);
        const double amount = rng.uniform(0.0, amount_max);
        const auto c0 = std::chrono::steady_clock::now();
        const net::ConsultOutcome out = client.consult(who, amount, deadline_ms);
        r.latencies_s.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() - c0).count());
        switch (out.status.code()) {
          case StatusCode::Ok:
            ++r.granted;
            if (!out.reply.certified) ++r.uncertified;
            break;
          case StatusCode::Insufficient: ++r.insufficient; break;
          case StatusCode::Denied: ++r.denied; break;
          case StatusCode::Unavailable: ++r.unavailable; break;
          case StatusCode::DeadlineExceeded: ++r.deadline; break;
          default: ++r.other; break;
        }
      }
      r.retries = client.stats().retries;
      r.failovers = client.stats().failovers;
    });
  }
  for (std::thread& t : workers) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  WorkerResult total;
  std::vector<double> lat;
  for (const WorkerResult& r : results) {
    total.granted += r.granted;
    total.denied += r.denied;
    total.insufficient += r.insufficient;
    total.unavailable += r.unavailable;
    total.deadline += r.deadline;
    total.other += r.other;
    total.uncertified += r.uncertified;
    total.retries += r.retries;
    total.failovers += r.failovers;
    lat.insert(lat.end(), r.latencies_s.begin(), r.latencies_s.end());
  }
  std::sort(lat.begin(), lat.end());
  const auto q = [&](double p) {
    if (lat.empty()) return 0.0;
    const std::size_t i = static_cast<std::size_t>(p * static_cast<double>(lat.size() - 1));
    return lat[i];
  };
  std::printf(
      "%llu requests in %.2f s (%.0f/s, %zu workers) | granted %llu | insufficient %llu | "
      "denied %llu |\nunavailable %llu | deadline %llu | other %llu | retries %llu | "
      "failovers %llu\n",
      static_cast<unsigned long long>(requests), wall_s,
      wall_s > 0 ? static_cast<double>(requests) / wall_s : 0.0, concurrency,
      static_cast<unsigned long long>(total.granted),
      static_cast<unsigned long long>(total.insufficient),
      static_cast<unsigned long long>(total.denied),
      static_cast<unsigned long long>(total.unavailable),
      static_cast<unsigned long long>(total.deadline),
      static_cast<unsigned long long>(total.other),
      static_cast<unsigned long long>(total.retries),
      static_cast<unsigned long long>(total.failovers));
  std::printf("latency p50/p95/p99 %.3f/%.3f/%.3f ms\n", q(0.50) * 1e3, q(0.95) * 1e3,
              q(0.99) * 1e3);
  if (total.uncertified > 0) {
    std::fprintf(stderr, "error: %llu grants arrived UNCERTIFIED\n",
                 static_cast<unsigned long long>(total.uncertified));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("port", "0", "server: TCP port on 127.0.0.1 (0 = ephemeral)");
  flags.define_int("participants", "16", "server: participants in the complete-graph economy");
  flags.define_double("share", "0.05",
                      "server: per-agreement relative share (share * (participants - 1) "
                      "must be <= 1)");
  flags.define_double("capacity", "10", "server: base capacity per participant");
  flags.define_int("threads", "2", "server: enforcement-engine shard threads");
  flags.define_int("plan-cache", "1", "server: 1 = epoch-keyed plan cache in the engine");
  flags.define_int("max-queue", "1024", "server: admission-queue bound (shed beyond)");
  flags.define_int("max-inflight", "128", "server: in-flight dispatch window");
  flags.define_int("min-deadline-us", "0", "server: shed requests arriving with less budget");
  flags.define_int("drain-grace-ms", "5000", "server: drain wait for in-flight answers");
  flags.define("metrics-out", "", "server: write an obs snapshot here on exit");
  flags.define("connect", "",
               "client mode: comma-separated host:port replica endpoints to drive");
  flags.define_int("requests", "100", "client: total consults to issue");
  flags.define_int("concurrency", "1", "client: worker threads (one Client each)");
  flags.define_int("deadline-ms", "1000", "client: per-consult deadline budget");
  flags.define_double("amount-max", "4", "client: amounts drawn uniform from (0, max]");
  flags.define_int("seed", "1", "client: workload RNG seed");

  flags.parse_or_exit(argc, argv,
                      "agora_serve: framed admission RPC service over loopback "
                      "(server by default, client with --connect)");
  try {
    return flags.get("connect").empty() ? run_server(flags) : run_client(flags);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
}
