// agora_value -- load an economy spec (see core/economy_io.h), price it,
// show per-principal transitive availability, and optionally answer an
// allocation query.
//
// Examples:
//   agora_value spec.txt
//   agora_value spec.txt --allocate=D --resource=disk --amount=8
//   agora_value spec.txt --level=1
#include <cstdio>
#include <fstream>
#include <iostream>

#include "agree/capacity.h"
#include "agree/from_economy.h"
#include "alloc/allocator.h"
#include "core/economy_io.h"
#include "core/valuation.h"
#include "util/flags.h"

using namespace agora;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("allocate", "", "principal name to run an allocation query for");
  flags.define("resource", "", "resource for the allocation query (default: first)");
  flags.define_double("amount", "0", "amount for the allocation query");
  flags.define_int("level", "0", "transitivity level (0 = full closure)");

  const std::vector<std::string> positional = flags.parse_or_exit(
      argc, argv,
      "agora_value: price an economy spec and query availability\n"
      "usage: agora_value <spec-file> [flags]",
      /*allow_positional=*/true);
  if (positional.empty()) flags.usage_error("missing <spec-file> argument");
  if (positional.size() > 1) flags.usage_error("unexpected argument: " + positional[1]);

  try {
    const core::Economy e = core::load_economy(positional[0]);
    const core::Valuation val = core::value_economy(e);

    std::printf("economy: %zu principals, %zu currencies, %zu tickets, %zu resources\n\n",
                e.num_principals(), e.num_currencies(), e.num_tickets(),
                e.num_resource_types());

    std::printf("%-16s", "currency");
    for (std::size_t r = 0; r < e.num_resource_types(); ++r)
      std::printf(" %12s", e.resource_type(core::ResourceTypeId(r)).name.c_str());
    std::printf("\n");
    for (std::size_t c = 0; c < e.num_currencies(); ++c) {
      std::printf("%-16s", e.currency(core::CurrencyId(c)).name.c_str());
      for (std::size_t r = 0; r < e.num_resource_types(); ++r)
        std::printf(" %12.3f", val.currency_value(core::CurrencyId(c), core::ResourceTypeId(r)));
      std::printf("\n");
    }

    agree::TransitiveOptions topts;
    const auto level = static_cast<std::size_t>(flags.get_int("level"));
    if (level > 0) topts.max_level = level;

    std::printf("\ntransitive availability C_i (level %s):\n",
                level == 0 ? "full" : std::to_string(level).c_str());
    std::printf("%-16s", "principal");
    for (std::size_t r = 0; r < e.num_resource_types(); ++r)
      std::printf(" %12s", e.resource_type(core::ResourceTypeId(r)).name.c_str());
    std::printf("\n");
    std::vector<agree::AgreementSystem> systems;
    for (std::size_t r = 0; r < e.num_resource_types(); ++r)
      systems.push_back(agree::from_economy(e, core::ResourceTypeId(r)));
    for (std::size_t p = 0; p < e.num_principals(); ++p) {
      std::printf("%-16s", e.principal(core::PrincipalId(p)).name.c_str());
      for (std::size_t r = 0; r < e.num_resource_types(); ++r) {
        const agree::CapacityReport rep = agree::compute_capacities(systems[r], topts);
        std::printf(" %12.3f", rep.capacity[p]);
      }
      std::printf("\n");
    }

    const std::string who = flags.get("allocate");
    if (!who.empty()) {
      const core::PrincipalId pid = e.find_principal(who);
      if (!pid.valid()) throw PreconditionError("unknown principal: " + who);
      std::string rname = flags.get("resource");
      if (rname.empty()) rname = e.resource_type(core::ResourceTypeId(0)).name;
      const core::ResourceTypeId rid = e.find_resource_type(rname);
      if (!rid.valid()) throw PreconditionError("unknown resource: " + rname);
      const double amount = flags.get_double("amount");

      alloc::AllocatorOptions opts;
      opts.transitive = topts;
      alloc::Allocator allocator(systems[rid.value], opts);
      std::printf("\nallocation query: %s wants %.3f %s (available: %.3f)\n", who.c_str(),
                  amount, rname.c_str(), allocator.available_to(pid.value));
      const alloc::AllocationPlan plan = allocator.allocate(pid.value, amount);
      if (!plan.satisfied()) {
        std::printf("  NOT satisfiable under the agreements\n");
        return 1;
      }
      std::printf("  satisfiable; min-perturbation draw (theta = %.3f):\n", plan.theta);
      for (std::size_t k = 0; k < plan.draw.size(); ++k)
        if (plan.draw[k] > 1e-9)
          std::printf("    %10.3f from %s\n", plan.draw[k],
                      e.principal(core::PrincipalId(k)).name.c_str());
    }
    return 0;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
}
