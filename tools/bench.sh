#!/usr/bin/env bash
# LP solver benchmark harness: builds micro_lp, micro_warmstart and
# micro_certify in Release, runs them, and merges the results into
# BENCH_lp.json at the repo root (iterations, ns/solve, allocs/solve, the
# sparse-vs-dense LPSCALE sweep from micro_lp, the warm-vs-cold iteration
# ratio from micro_warmstart's verification pass, and the certification
# overhead from micro_certify's A/B pass).
# Usage: tools/bench.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=build-release
OUT=bench_results
mkdir -p "${OUT}"

cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD}" -j --target micro_lp micro_warmstart micro_certify scale_shards \
  scale_hotpath chaos_failover wire_loopback

# micro_lp runs the LPSCALE scaling sweep (n in {100, 500, 1000}, sparse-LU
# vs dense-inverse) before its benchmark table and exits non-zero if any
# configuration fails to solve+certify or the sparse basis misses the >=5x
# consults/s bound at n = 100 -- set -e makes that the release gate here.
"./${BUILD}/bench/micro_lp" \
  --benchmark_out="${OUT}/micro_lp.json" --benchmark_out_format=json \
  | tee "${OUT}/lpscale_summary.txt"
# micro_warmstart prints its WARMSTART verification line (cold/warm pivot
# counts, theta agreement) before the benchmark table; keep it for the merge.
"./${BUILD}/bench/micro_warmstart" \
  --benchmark_out="${OUT}/micro_warmstart.json" --benchmark_out_format=json \
  | tee "${OUT}/warmstart_summary.txt"
# micro_certify prints its CERTIFY line (A/B overhead of solution
# certification on the warm consult sequence, zero-uncertified-grants
# invariant) the same way.
"./${BUILD}/bench/micro_certify" \
  --benchmark_out="${OUT}/micro_certify.json" --benchmark_out_format=json \
  | tee "${OUT}/certify_summary.txt"

python3 tools/bench_lp_json.py \
  "${OUT}/micro_lp.json" "${OUT}/lpscale_summary.txt" \
  "${OUT}/micro_warmstart.json" "${OUT}/warmstart_summary.txt" \
  "${OUT}/micro_certify.json" "${OUT}/certify_summary.txt" BENCH_lp.json

echo "bench: BENCH_lp.json written"

# Enforcement-engine sweeps: the shard-count sweep (1/2/4/8 worker shards,
# consults/sec + p50/p99 consult latency with a recorded p99 regression
# bound), its single-component federation sweep (federated off/on x 1/2/4/8
# shards over the ring-bridged economy, measured optimality gap per point),
# and the admission hot-path sweep (baseline vs plan-cache vs cache+fastpath
# on a Zipf s=1.1 request mix; cache hit-rate, fast-path share,
# 100%-certified-grants gate). The merge script nests the fragments under
# the schema-versioned BENCH_engine.json and enforces the >=10x
# cache-speedup and >=3x federated-shard-speedup acceptance bounds.
"./${BUILD}/bench/scale_shards" "${OUT}/scale_shards.json"
"./${BUILD}/bench/scale_hotpath" "${OUT}/scale_hotpath.json"
python3 tools/bench_engine_json.py \
  "${OUT}/scale_shards.json" "${OUT}/scale_hotpath.json" BENCH_engine.json

echo "bench: BENCH_engine.json written"

# Replicated-GRM failover: post-crash unavailability swept over raft seeds
# (acceptance bound: a few election timeouts) and the 1-vs-3-replica message
# amplification / latency overhead, all in deterministic bus virtual time.
# The binary exits non-zero if the bound is exceeded or replicas diverge.
"./${BUILD}/bench/chaos_failover" BENCH_rms.json

echo "bench: BENCH_rms.json written"

# Wire boundary: sustainable-rate calibration, 2x-overload shed behavior
# (explicit unavailable + retry-after, bounded p99 for the accepted
# consults), and graceful drain under live senders, all over loopback.
# The binary exits non-zero if an acceptance bound is violated.
"./${BUILD}/bench/wire_loopback" BENCH_net.json

echo "bench: BENCH_net.json written"
