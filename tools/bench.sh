#!/usr/bin/env bash
# LP solver benchmark harness: builds micro_lp and micro_warmstart in
# Release, runs them, and merges the results into BENCH_lp.json at the repo
# root (iterations, ns/solve, allocs/solve, plus the warm-vs-cold iteration
# ratio from micro_warmstart's verification pass).
# Usage: tools/bench.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=build-release
OUT=bench_results
mkdir -p "${OUT}"

cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD}" -j --target micro_lp micro_warmstart

"./${BUILD}/bench/micro_lp" \
  --benchmark_out="${OUT}/micro_lp.json" --benchmark_out_format=json
# micro_warmstart prints its WARMSTART verification line (cold/warm pivot
# counts, theta agreement) before the benchmark table; keep it for the merge.
"./${BUILD}/bench/micro_warmstart" \
  --benchmark_out="${OUT}/micro_warmstart.json" --benchmark_out_format=json \
  | tee "${OUT}/warmstart_summary.txt"

python3 tools/bench_lp_json.py \
  "${OUT}/micro_lp.json" "${OUT}/micro_warmstart.json" \
  "${OUT}/warmstart_summary.txt" BENCH_lp.json

echo "bench: BENCH_lp.json written"
