#!/usr/bin/env python3
"""Merge the enforcement-engine bench fragments into BENCH_engine.json.

Usage: bench_engine_json.py <scale_shards.json> <scale_hotpath.json> <out.json>

scale_shards (shard-count sweep) and scale_hotpath (plan-cache / fast-path
sweep, DESIGN.md section 13) each write a standalone JSON fragment; this
script nests them under a schema-versioned top level so the repo tracks one
engine bench file. Only the Python standard library is used.

The acceptance gates are re-checked here so a bad merge can't slip into the
tracked file:
  * hot path (PR 7): certified_grant_pct must be 100 and the cache speedup
    over the baseline phase must be >= 10x;
  * federation (PR 9): on the single-component sweep, federated@8-shards
    must beat federated@1-shard by >= 3x with NO full-replica fallback
    (federated true, replicated false at every threads>1 point), every
    grant certified, and a finite measured optimality gap recorded.
"""

import json
import math
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) != 4:
        raise SystemExit(__doc__)
    shards = load(argv[1])
    hotpath = load(argv[2])

    if hotpath.get("certified_grant_pct") != 100.0:
        raise SystemExit("hotpath sweep reports uncertified grants")
    speedup = hotpath.get("speedup_cache_vs_baseline", 0.0)
    if speedup < 10.0:
        raise SystemExit(f"hotpath cache speedup {speedup:.1f}x below the 10x acceptance bound")

    single = shards.get("single_component")
    if not single:
        raise SystemExit("scale_shards fragment lacks the single_component sweep")
    fed_speedup = single.get("speedup_fed_8_vs_1", 0.0)
    if fed_speedup < 3.0:
        raise SystemExit(
            f"federated 8-vs-1 shard speedup {fed_speedup:.2f}x below the 3x acceptance bound")
    gap_seen = False
    for pt in single.get("sweep", []):
        where = f"single_component point threads={pt.get('threads')} fed={pt.get('federated_requested')}"
        if pt.get("certified_grant_pct") != 100.0:
            raise SystemExit(f"{where}: uncertified grants")
        if pt.get("federated_requested") and pt.get("threads", 1) > 1:
            if pt.get("replicated") or not pt.get("federated"):
                raise SystemExit(f"{where}: fell back to full replicas")
            gap = pt.get("gap_max_rel")
            if not isinstance(gap, (int, float)) or not math.isfinite(gap) or gap < 0.0:
                raise SystemExit(f"{where}: no measured optimality gap recorded")
            gap_seen = True
    if not gap_seen:
        raise SystemExit("single_component sweep recorded no federated optimality gap")

    doc = {
        "schema": "agora-bench-engine/3",
        "scale_shards": shards,
        "scale_hotpath": hotpath,
    }
    with open(argv[3], "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {argv[3]}")


if __name__ == "__main__":
    main(sys.argv)
