#!/usr/bin/env python3
"""Merge the enforcement-engine bench fragments into BENCH_engine.json.

Usage: bench_engine_json.py <scale_shards.json> <scale_hotpath.json> <out.json>

scale_shards (shard-count sweep) and scale_hotpath (plan-cache / fast-path
sweep, DESIGN.md section 13) each write a standalone JSON fragment; this
script nests them under a schema-versioned top level so the repo tracks one
engine bench file. Only the Python standard library is used.

The hot-path acceptance gates from ISSUE/PR7 are re-checked here so a bad
merge can't slip into the tracked file: certified_grant_pct must be 100 and
the cache speedup over the baseline phase must be >= 10x.
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) != 4:
        raise SystemExit(__doc__)
    shards = load(argv[1])
    hotpath = load(argv[2])

    if hotpath.get("certified_grant_pct") != 100.0:
        raise SystemExit("hotpath sweep reports uncertified grants")
    speedup = hotpath.get("speedup_cache_vs_baseline", 0.0)
    if speedup < 10.0:
        raise SystemExit(f"hotpath cache speedup {speedup:.1f}x below the 10x acceptance bound")

    doc = {
        "schema": "agora-bench-engine/2",
        "scale_shards": shards,
        "scale_hotpath": hotpath,
    }
    with open(argv[3], "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {argv[3]}")


if __name__ == "__main__":
    main(sys.argv)
