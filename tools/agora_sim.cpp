// agora_sim -- command-line driver for the ISP proxy case-study simulator.
//
// Runs an arbitrary configuration of the paper's scenario and prints the
// per-hour waiting-time series plus a summary; optionally writes the full
// 10-minute-slot series as CSV.
//
// Examples:
//   agora_sim --proxies=10 --topology=complete --share=0.1 --gap-hours=1
//   agora_sim --topology=ring --share=0.8 --skip=3 --level=1
//   agora_sim --scheduler=endpoint --topology=decay
//   agora_sim --scheduler=none --peak-rate=12 --capacity=1.3
//
// With --grm-replicas >= 1 the tool instead runs the RMS service mode: a
// quorum-replicated GRM (DESIGN.md §12) with one LRM per site and a
// failover-aware client, driven by a seeded synthetic workload over the
// virtual-time message bus. Fault injection is optional:
//   agora_sim --grm-replicas=3 --rms-requests=200
//   agora_sim --grm-replicas=3 --rms-crash-leader=1 --rms-drop=0.05
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "agree/topology.h"
#include "obs/export.h"
#include "proxysim/simulator.h"
#include "rms/bus.h"
#include "rms/client.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "rms/replica/group.h"
#include "trace/generator.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace agora;

namespace {

/// RMS service mode: replicated GRM + per-site LRMs + failover client.
int run_rms_service(const Flags& flags) {
  const auto replicas = static_cast<std::size_t>(flags.get_int("grm-replicas"));
  const auto sites = static_cast<std::size_t>(flags.get_int("rms-sites"));
  const auto requests = static_cast<std::uint64_t>(flags.get_int("rms-requests"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double share = flags.get_double("share");
  const double drop = flags.get_double("rms-drop");
  const bool crash_leader = flags.get_int("rms-crash-leader") != 0;
  if (sites < 1) flags.usage_error("--rms-sites must be >= 1");
  if (!(drop >= 0.0 && drop < 1.0)) flags.usage_error("--rms-drop must be in [0, 1)");

  // One resource; site s has capacity 5 * (s + 1), every pair shares `share`.
  agree::AgreementSystem sys(sites);
  for (std::size_t s = 0; s < sites; ++s) sys.capacity[s] = 5.0 * static_cast<double>(s + 1);
  for (std::size_t a = 0; a < sites; ++a)
    for (std::size_t b = 0; b < sites; ++b)
      if (a != b) sys.relative(a, b) = share;

  rms::GrmOptions gopt;
  gopt.reserve_attempts = 4;
  gopt.reserve_backoff = 0.1;
  gopt.reserve_jitter = 0.25;
  gopt.replication.replicas = replicas;
  gopt.replication.seed = seed;
  rms::ClientOptions copt;
  copt.max_attempts = 10;
  copt.retry_backoff = 0.2;
  copt.backoff_cap = 1.0;
  copt.retry_jitter = 0.25;
  copt.deadline = 30.0;
  copt.send_latency = 0.01;

  rms::MessageBus bus;
  rms::replica::ReplicatedGrm grp(bus, {sys}, {}, 0.01, gopt);
  std::vector<std::unique_ptr<rms::Lrm>> lrms;
  for (std::size_t s = 0; s < sites; ++s) {
    lrms.push_back(std::make_unique<rms::Lrm>(
        bus, std::vector<double>{5.0 * static_cast<double>(s + 1)}, 0.01));
    grp.register_lrm(s, lrms[s]->endpoint());
    lrms[s]->attach(grp.ingress(s), s);
  }
  grp.start();
  rms::RequestClient client(bus, grp.endpoints(), copt);
  bus.run_until(5.0);

  rms::FaultPlan plan;
  if (drop > 0.0) {
    plan.default_link.drop = drop;
    plan.seed = seed;
  }
  const double crash_at = 10.0;
  if (crash_leader) {
    if (const auto leader = grp.leader())
      plan.crashes.push_back(
          rms::CrashWindow{grp.node(*leader).endpoint(), crash_at, crash_at + 10.0});
  }
  bus.set_fault_plan(plan);

  std::printf("rms service: %zu replicas, %zu sites, %llu requests, drop=%.2f%s\n",
              replicas, sites, static_cast<unsigned long long>(requests), drop,
              crash_leader ? ", leader crash at t=10" : "");
  Pcg32 workload(seed);
  for (std::uint64_t id = 1; id <= requests; ++id) {
    rms::AllocationRequest req;
    req.request_id = id;
    req.principal = workload.uniform_u32(static_cast<std::uint32_t>(sites));
    req.amounts = {workload.uniform(0.3, 1.5)};
    req.duration = workload.uniform(0.5, 2.0);
    client.submit(req);
    bus.run_until(bus.now() + 0.25);
  }
  bus.run_until(bus.now() + 8.0);
  bus.set_fault_plan(rms::FaultPlan{});   // heal, then settle before quiesce
  bus.run_until(bus.now() + 5.0);
  grp.stop();
  bus.run_until_idle();

  std::uint64_t granted = 0;
  double lat_sum = 0.0;
  double first_grant_after = std::numeric_limits<double>::infinity();
  for (const auto& out : client.outcomes()) {
    if (!out.reply.granted) continue;
    ++granted;
    lat_sum += out.latency();
    if (out.resolved_at >= crash_at)
      first_grant_after = std::min(first_grant_after, out.resolved_at);
  }
  const auto st = grp.stats();
  std::printf(
      "granted %llu/%llu | mean latency %.4f vt-s | retries %llu | redirects %llu | "
      "failovers %llu | deadline denials %llu\n",
      static_cast<unsigned long long>(granted), static_cast<unsigned long long>(requests),
      granted ? lat_sum / static_cast<double>(granted) : 0.0,
      static_cast<unsigned long long>(client.retries()),
      static_cast<unsigned long long>(client.redirects()),
      static_cast<unsigned long long>(client.failovers()),
      static_cast<unsigned long long>(client.deadline_denials()));
  std::printf("raft: elections %llu | restarts %llu | snapshots %llu | converged %s\n",
              static_cast<unsigned long long>(st.elections_won),
              static_cast<unsigned long long>(st.restarts),
              static_cast<unsigned long long>(st.snapshots_installed),
              grp.converged() ? "yes" : "NO");
  if (crash_leader && std::isfinite(first_grant_after))
    std::printf("post-crash unavailability %.3f vt-s\n", first_grant_after - crash_at);
  return grp.converged() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("proxies", "10", "number of ISP proxies");
  flags.define_double("gap-hours", "1", "time-zone skew between adjacent proxies (hours)");
  flags.define_double("peak-rate", "9.5", "requests/second at the diurnal peak");
  flags.define_int("seed", "100", "base RNG seed (proxy p uses seed+p)");
  flags.define("scheduler", "lp", "lp | endpoint | none");
  flags.define("topology", "complete", "complete | ring | decay | sparse");
  flags.define_double("share", "0.1", "per-agreement relative share");
  flags.define_int("skip", "1", "ring topology: neighbor distance");
  flags.define_int("degree", "3", "sparse topology: agreements per proxy");
  flags.define_int("level", "0", "transitivity level (0 = full closure)");
  flags.define_double("redirect-cost", "0", "fixed overhead per redirected request (s)");
  flags.define_double("capacity", "1", "processing-power multiplier for every proxy");
  flags.define_double("threshold", "5", "queued seconds that trigger a scheduler consult");
  flags.define_double("cooldown", "5", "minimum seconds between consults per proxy");
  flags.define_double("window", "600", "scheduling epoch for spare-capacity reports (s)");
  flags.define_int("threads", "0",
               "LP scheduler worker threads: 0 = direct in-process allocator, >= 1 = "
               "sharded enforcement engine (1 is decision-identical to direct)");
  flags.define_int("plan-cache", "0",
               "1 = epoch-keyed decision cache in front of the engine: repeated consult "
               "shapes answered without the LP after a certified residual re-check "
               "(requires --threads >= 1)");
  flags.define_int("zipf", "0",
               "Zipf(s) response-popularity exponent: responses drawn from a fixed "
               "512-object catalog with Zipf-ranked popularity; 0 = fresh "
               "lognormal/Pareto length per request");
  flags.define_int("grm-replicas", "0",
               "0 = proxy simulator (default); >= 1 switches to the RMS service mode: "
               "a quorum-replicated GRM with this many replicas plus per-site LRMs");
  flags.define_int("rms-sites", "2", "RMS mode: number of sites/LRMs");
  flags.define_int("rms-requests", "100", "RMS mode: synthetic allocation requests");
  flags.define_double("rms-drop", "0", "RMS mode: per-link message drop probability");
  flags.define_int("rms-crash-leader", "0", "RMS mode: 1 = crash the leader at t=10 for 10 s");
  flags.define("csv", "", "write the full 10-minute-slot series to this CSV file");
  flags.define("metrics-out", "",
               "write an observability snapshot (registry metrics + trace events) to this "
               "file; .csv extension selects CSV, anything else JSON lines");

  flags.parse_or_exit(argc, argv,
                      "agora_sim: web-proxy sharing-agreement simulator "
                      "(Zhao & Karamcheti, SC 2000)");

  try {
    if (flags.get_int("grm-replicas") >= 1) return run_rms_service(flags);
    const auto n = static_cast<std::size_t>(flags.get_int("proxies"));
    const double share = flags.get_double("share");

    proxysim::SimConfig cfg;
    cfg.num_proxies = n;
    cfg.redirect_cost = flags.get_double("redirect-cost");
    cfg.queue_threshold = flags.get_double("threshold");
    cfg.consult_cooldown = flags.get_double("cooldown");
    cfg.planning_window = flags.get_double("window");
    cfg.power.assign(n, flags.get_double("capacity"));
    cfg.scheduler_threads = static_cast<std::size_t>(flags.get_int("threads"));
    cfg.engine_plan_cache = flags.get_int("plan-cache") != 0;
    if (cfg.engine_plan_cache && cfg.scheduler_threads == 0)
      flags.usage_error("--plan-cache requires --threads >= 1 (engine backend)");

    const std::string sched = flags.get("scheduler");
    if (sched == "lp") cfg.scheduler = proxysim::SchedulerKind::Lp;
    else if (sched == "endpoint") cfg.scheduler = proxysim::SchedulerKind::Endpoint;
    else if (sched == "none") cfg.scheduler = proxysim::SchedulerKind::None;
    else flags.usage_error("unknown --scheduler: " + sched);

    const std::string topo = flags.get("topology");
    if (cfg.scheduler != proxysim::SchedulerKind::None) {
      if (topo == "complete") cfg.agreements = agree::complete_graph(n, share);
      else if (topo == "ring")
        cfg.agreements = agree::ring(n, share, static_cast<std::size_t>(flags.get_int("skip")));
      else if (topo == "decay")
        cfg.agreements = agree::distance_decay(n, {2 * share, share, share / 2, share / 4});
      else if (topo == "sparse")
        cfg.agreements = agree::sparse_random(
            n, static_cast<std::size_t>(flags.get_int("degree")), share,
            static_cast<std::uint64_t>(flags.get_int("seed")));
      else flags.usage_error("unknown --topology: " + topo);
    }
    const auto level = static_cast<std::size_t>(flags.get_int("level"));
    if (level > 0) cfg.alloc_opts.transitive.max_level = level;

    trace::GeneratorConfig gc;
    gc.peak_rate = flags.get_double("peak-rate");
    gc.zipf_s = flags.get_double("zipf");
    const trace::Generator gen(gc, trace::DiurnalProfile::berkeley_like());
    std::vector<std::vector<trace::TraceRequest>> traces;
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    const double gap = flags.get_double("gap-hours") * 3600.0;
    for (std::size_t p = 0; p < n; ++p)
      traces.push_back(gen.generate(seed + p, gap * static_cast<double>(p)));

    std::printf("simulating %zu proxies, scheduler=%s, topology=%s ...\n", n, sched.c_str(),
                topo.c_str());
    proxysim::Simulator sim(cfg);
    const proxysim::SimMetrics m = sim.run(traces);

    std::printf("\n%-5s %12s\n", "hour", "avg wait (s)");
    for (std::size_t h = 0; h < 24; ++h) {
      StreamingStats acc;
      for (std::size_t s = h * 6; s < (h + 1) * 6 && s < m.wait_by_slot.slots(); ++s)
        acc.merge(m.wait_by_slot.slot(s));
      std::printf("%-5zu %12.3f\n", h, acc.mean());
    }
    std::printf(
        "\nrequests %llu | mean wait %.3f s | p50/p95/p99 %.2f/%.2f/%.2f s | "
        "peak-slot wait %.2f s |\nredirected %.2f%% | consults %llu | LP iterations %llu\n",
        static_cast<unsigned long long>(m.total_requests), m.mean_wait(),
        m.wait_quantile(0.50), m.wait_quantile(0.95), m.wait_quantile(0.99),
        m.peak_slot_wait(), 100.0 * m.redirected_fraction(),
        static_cast<unsigned long long>(m.scheduler_consults),
        static_cast<unsigned long long>(m.lp_iterations));

    const std::string csv = flags.get("csv");
    if (!csv.empty()) {
      Table t({"slot_mid_s", "requests", "avg_wait_s", "redirected"});
      for (std::size_t s = 0; s < m.wait_by_slot.slots(); ++s)
        t.add_row({m.wait_by_slot.slot_mid(s), static_cast<double>(m.requests_by_slot[s]),
                   m.wait_by_slot.slot(s).mean(), static_cast<double>(m.redirected_by_slot[s])});
      t.save_csv(csv);
      std::printf("wrote %s\n", csv.c_str());
    }

    const std::string metrics_out = flags.get("metrics-out");
    if (!metrics_out.empty()) {
      // Registry totals from the global sink; the run's own event stream
      // comes from SimMetrics (the per-run ring), not the global ring.
      obs::Sink snap = obs::Sink::global();
      snap.events = nullptr;
      obs::write_snapshot(metrics_out, snap, m.events);
      std::printf("wrote %s (%zu metrics-visible events, %llu overwritten)\n",
                  metrics_out.c_str(), m.events.size(),
                  static_cast<unsigned long long>(m.events_overwritten));
    }
    return 0;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
}
