#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then
# rebuild the rms/chaos-sensitive tests under ASan+UBSan and run them.
# Usage: tools/tier1.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
# Fast tier-1 lane: the long-running stress/soak/figure/chaos suites carry
# tier2-* labels and run selectively (`ctest -L tier2-stress` etc.) or via
# the sanitizer passes below. Plain `ctest` still runs everything.
(cd build && ctest --output-on-failure -j -LE '^tier2-')

# Sanitizer pass over the message-layer tests (the fault-injection code
# paths -- drops, duplicate frees of envelopes, restart handlers -- are the
# ones most likely to hide lifetime bugs), the replicated-GRM suites
# (rms_replica_test plus the tier2-chaos failover suite, whose crash/
# partition/loss scenarios churn raft timers and snapshots) and the LP
# certification, adversarial and sparse-basis suites (ill-conditioned
# pivoting, deliberately corrupted workspaces, and the sparse LU's bucketed
# pivot search / eta-file replay -- index-heavy code where out-of-bounds
# reads and UB would hide). The sanitizer
# build compiles with -ffp-contract=off so its floating-point results match
# the tier-1 build bit for bit.
cmake -B build-asan -S . -DAGORA_SANITIZE=ON
cmake --build build-asan -j --target rms_test rms_chaos_test rms_replica_test \
  rms_failover_test fuzz_test lp_certify_test lp_adversarial_test lp_sparse_test \
  engine_cache_test \
  engine_federation_test credit_conservation_test federation_chaos_test \
  net_frame_test net_service_test net_soak_test
./build-asan/tests/rms_test
./build-asan/tests/rms_chaos_test
./build-asan/tests/rms_replica_test
./build-asan/tests/rms_failover_test
./build-asan/tests/fuzz_test
./build-asan/tests/lp_certify_test
./build-asan/tests/lp_adversarial_test
./build-asan/tests/lp_sparse_test
./build-asan/tests/engine_cache_test
# Federation suites under ASan/UBSan: the credit ledger's settle/consume
# arithmetic, the border-bank allocator rebuilds, and the chaos harness's
# envelope lifetimes are the new lifetime-sensitive surface.
./build-asan/tests/engine_federation_test
./build-asan/tests/credit_conservation_test
./build-asan/tests/federation_chaos_test
# Wire boundary under ASan/UBSan: the frame-decoder fuzz corpus (bit flips,
# truncations, version skew -- exactly where over-reads would hide), the
# live loopback service suite (partial I/O, drain, malformed peers), and
# the tier2 soak with its crash/restart window.
./build-asan/tests/net_frame_test
./build-asan/tests/net_service_test
./build-asan/tests/net_soak_test

# ThreadSanitizer pass over the deliberately multithreaded code: the
# concurrent observability substrate (metrics registry, lock-free EventRing
# and its multithreaded hammer test), the sharded enforcement engine (shard
# workers, MPSC queues, snapshot publication -- engine_test pins the serial
# semantics, engine_stress_test hammers it with producer/mutator threads and
# runs the GRM-on-engine chaos scenarios), and the rms chaos suite, whose
# fault-injection paths exercise the bus under the heaviest event/metric
# traffic. engine_cache_test joins both passes: the plan cache's lock-free
# slots (atomic shared_ptr loads racing in-place overwrites) and the
# caller-thread hit path racing capacity mutations are exactly the code
# TSan is for, and the hammer test drives them hard.
cmake -B build-tsan -S . -DAGORA_TSAN=ON
cmake --build build-tsan -j --target obs_test rms_chaos_test rms_failover_test \
  engine_test engine_stress_test engine_cache_test engine_federation_test \
  federation_chaos_test net_service_test
./build-tsan/tests/obs_test
./build-tsan/tests/rms_chaos_test
./build-tsan/tests/rms_failover_test
./build-tsan/tests/engine_test
./build-tsan/tests/engine_stress_test
./build-tsan/tests/engine_cache_test
# Federated engine under TSan: worker threads consult against border banks
# while mutators settle credits and swap shard allocators -- exactly the new
# cross-thread handoff (ops carrying rebuilds/credit tables, gap rings
# drained through acks) this pass is for.
./build-tsan/tests/engine_federation_test
./build-tsan/tests/federation_chaos_test
# net_service_test joins the TSan pass: the poll-loop thread's connection
# state races client threads and the engine's shard workers through the
# admission queue, in-flight futures, and the atomic stats cells.
./build-tsan/tests/net_service_test

echo "tier1: all green"
echo "tier1: LP perf numbers (BENCH_lp.json) are produced by tools/bench.sh"
