#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then
# rebuild the rms/chaos-sensitive tests under ASan+UBSan and run them.
# Usage: tools/tier1.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Sanitizer pass over the message-layer tests: the fault-injection code
# paths (drops, duplicate frees of envelopes, restart handlers) are the
# ones most likely to hide lifetime bugs.
cmake -B build-asan -S . -DAGORA_SANITIZE=ON
cmake --build build-asan -j --target rms_test rms_chaos_test fuzz_test
./build-asan/tests/rms_test
./build-asan/tests/rms_chaos_test
./build-asan/tests/fuzz_test
echo "tier1: all green"
echo "tier1: LP perf numbers (BENCH_lp.json) are produced by tools/bench.sh"
